#include "sim/service/daemon.hh"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "common/sim_error.hh"
#include "sim/gpu_config.hh"
#include "sim/journal.hh"
#include "sim/report_json.hh"
#include "sim/service/job_queue.hh"
#include "sim/service/protocol.hh"
#include "sim/service/result_cache.hh"
#include "workloads/sweep_jobs.hh"

namespace fs = std::filesystem;

namespace cawa
{

namespace
{

using Clock = std::chrono::steady_clock;

double
secondsSince(Clock::time_point t)
{
    return std::chrono::duration<double>(Clock::now() - t).count();
}

Clock::time_point
after(double sec)
{
    return Clock::now() +
           std::chrono::duration_cast<Clock::duration>(
               std::chrono::duration<double>(sec));
}

bool
fileReadable(const std::string &path)
{
    return !path.empty() && access(path.c_str(), R_OK) == 0;
}

/** One connected client: buffered, non-blocking in both directions. */
struct ClientConn
{
    int fd = -1;
    FrameReader reader;
    std::string outBuf;   ///< framed bytes not yet written
    std::size_t outPos = 0;
    bool dead = false;
};

/** One claimed job: a running worker or a backoff slot awaiting
 *  respawn. Holds a worker slot either way, so the client quota and
 *  the worker cap count it until it finishes. */
struct ActiveJob
{
    std::uint64_t id = 0;
    std::string name;
    std::string client;
    std::string cacheKey;
    WorkloadJobSpec spec;
    SweepJob job;
    int attempt = 0;
    bool running = false;  ///< false: waiting out a backoff delay
    bool finished = false; ///< reaped for good, erase after the scan
    Clock::time_point readyAt;

    pid_t pid = -1;
    int fromFd = -1;
    FrameReader reader;
    bool gotResult = false;
    std::string rawResult; ///< verbatim result frame payload
    SweepResult pendingResult;
    std::string frameError;
    Clock::time_point started;
    Clock::time_point lastBeat;
    Clock::time_point termAt;
    bool termSent = false;
    std::string killReason;
    std::string lastCheckpoint;
    bool cancelRequested = false;
};

} // namespace

SimDaemon::SimDaemon(DaemonOptions opt) : opt_(std::move(opt))
{
    if (opt_.workers < 1)
        opt_.workers = 1;
    if (opt_.heartbeatIntervalSec <= 0.0)
        opt_.heartbeatIntervalSec = 0.25;
    if (opt_.heartbeatMissLimit < 1)
        opt_.heartbeatMissLimit = 1;
    if (opt_.maxAttemptsPerJob < 1)
        opt_.maxAttemptsPerJob = 1;
    if (opt_.jobMaxAttempts < 1)
        opt_.jobMaxAttempts = 1;
}

int
SimDaemon::run()
{
    if (opt_.socketPath.empty() || opt_.stateDir.empty())
        throw SimError(SimErrorKind::Config,
                       "cawad needs a socket path and a state "
                       "directory");
    if (opt_.workerArgv0.empty())
        throw SimError(SimErrorKind::Config,
                       "cawad needs workerArgv0 (the --worker "
                       "binary)");
    // Raw client-socket writes can hit a vanished peer; that must be
    // an EPIPE errno, never a fatal signal.
    std::signal(SIGPIPE, SIG_IGN);

    std::error_code ec;
    fs::create_directories(opt_.stateDir, ec);
    const std::string ckptDir =
        (fs::path(opt_.stateDir) / "ckpt").string();
    fs::create_directories(ckptDir, ec);

    ResultCache cache((fs::path(opt_.stateDir) / "cache").string());
    ServiceJobQueue queue;
    queue.open((fs::path(opt_.stateDir) / "queue.jsonl").string());

    auto emit = [&](const std::string &event,
                    const std::string &detail) {
        if (opt_.onEvent)
            opt_.onEvent(event, detail);
    };

    // Restart replay. A job whose result is already cached finished
    // before its done record hit the journal (the one crash window):
    // retire it from the cache instead of recomputing. Everything
    // else re-runs, from its checkpoint when one survived.
    {
        std::vector<std::uint64_t> cached;
        for (const QueuedJob &job : queue.pending())
            if (cache.contains(job.cacheKey))
                cached.push_back(job.id);
        for (const std::uint64_t id : cached) {
            emit("replay-cached", std::to_string(id));
            queue.markDone(id, "ok");
        }
        if (!queue.pending().empty())
            emit("replay",
                 std::to_string(queue.pending().size()) +
                     " pending jobs resume");
    }

    const int listenFd = listenUnixSocket(opt_.socketPath);
    setNonBlocking(listenFd);
    emit("listening", opt_.socketPath);

    std::map<int, ClientConn> clients; ///< conn id -> connection
    int nextConnId = 1;
    std::unordered_map<std::uint64_t, std::vector<int>> waiters;
    std::vector<ActiveJob> actives;
    const double hungAfterSec =
        opt_.heartbeatIntervalSec * opt_.heartbeatMissLimit;
    const double deadlineSec =
        opt_.jobTimeoutSec > 0.0 ? opt_.jobTimeoutSec * 2.0 + 10.0
                                 : 0.0;
    bool stopping = false;

    auto queueFrame = [&](int connId, const std::string &payload) {
        const auto it = clients.find(connId);
        if (it == clients.end() || it->second.dead)
            return;
        char hdr[4];
        const std::uint32_t n =
            static_cast<std::uint32_t>(payload.size());
        hdr[0] = static_cast<char>(n & 0xff);
        hdr[1] = static_cast<char>((n >> 8) & 0xff);
        hdr[2] = static_cast<char>((n >> 16) & 0xff);
        hdr[3] = static_cast<char>((n >> 24) & 0xff);
        it->second.outBuf.append(hdr, 4);
        it->second.outBuf.append(payload);
    };

    auto notifyWaiters = [&](std::uint64_t id,
                             const std::string &payload) {
        const auto it = waiters.find(id);
        if (it == waiters.end())
            return;
        for (const int connId : it->second)
            queueFrame(connId, payload);
    };

    auto flushClient = [&](ClientConn &conn) {
        while (conn.outPos < conn.outBuf.size()) {
            const ssize_t n =
                ::write(conn.fd, conn.outBuf.data() + conn.outPos,
                        conn.outBuf.size() - conn.outPos);
            if (n > 0) {
                conn.outPos += static_cast<std::size_t>(n);
                continue;
            }
            if (n < 0 && errno == EINTR)
                continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
                return; // poll raises POLLOUT when writable again
            conn.dead = true;
            return;
        }
        conn.outBuf.clear();
        conn.outPos = 0;
    };

    auto findActive = [&](std::uint64_t id) -> ActiveJob * {
        for (ActiveJob &a : actives)
            if (a.id == id && !a.finished)
                return &a;
        return nullptr;
    };

    auto spawnActive = [&](ActiveJob &a) {
        ++a.attempt;
        // Resume from the most recent on-disk progress: the frame
        // the last worker announced, else the conventional path a
        // previous daemon life left behind.
        if (fileReadable(a.lastCheckpoint))
            a.job.resumeFromCheckpoint = a.lastCheckpoint;
        else if (fileReadable(a.job.cfg.checkpointPath))
            a.job.resumeFromCheckpoint = a.job.cfg.checkpointPath;

        ChildProcess child =
            spawnWorker({opt_.workerArgv0, "--worker"}, opt_.limits);
        writeFrame(child.toChild,
                   workerSpecJson(a.spec, a.job, opt_.jobMaxAttempts,
                                  a.attempt,
                                  opt_.heartbeatIntervalSec));
        close(child.toChild);
        setNonBlocking(child.fromChild);

        a.pid = child.pid;
        a.fromFd = child.fromChild;
        a.reader = FrameReader();
        a.gotResult = false;
        a.rawResult.clear();
        a.frameError.clear();
        a.started = a.lastBeat = Clock::now();
        a.termSent = false;
        a.killReason.clear();
        a.running = true;
        emit("spawn", a.name);
        notifyWaiters(a.id, progressFrameJson(a.id, "spawn", a.name,
                                              a.attempt));
    };

    auto startJob = [&](const QueuedJob &q) {
        ActiveJob a;
        a.id = q.id;
        a.name = q.name;
        a.client = q.client;
        a.cacheKey = q.cacheKey;
        a.spec = q.spec;
        a.job = makeWorkloadJob(q.spec);
        a.job.cfg.wallClockLimitSec = opt_.jobTimeoutSec;
        a.job.cfg.checkpointPath =
            (fs::path(ckptDir) /
             ("job" + std::to_string(q.id) + ".ckpt"))
                .string();
        a.job.cfg.checkpointInterval = opt_.checkpointInterval;
        actives.push_back(std::move(a));
        spawnActive(actives.back());
    };

    // Finish for good: journal first (durable before announced),
    // then announce to every waiter, then drop the bookkeeping.
    auto finishActive = [&](ActiveJob &a, const std::string &status,
                            bool journalDone,
                            const std::string &resultPayload) {
        if (journalDone)
            queue.markDone(a.id, status);
        if (!a.job.cfg.checkpointPath.empty())
            ::unlink(a.job.cfg.checkpointPath.c_str());
        notifyWaiters(a.id,
                      resultEnvelopeJson(a.id, a.name, false,
                                         resultPayload));
        waiters.erase(a.id);
        a.finished = true;
        emit("result", a.name + " " + status);
    };

    auto drainWorker = [&](ActiveJob &a) {
        if (a.fromFd < 0)
            return;
        for (;;) {
            const int got = readAvailable(a.fromFd, a.reader);
            std::string payload;
            while (a.reader.next(payload)) {
                a.lastBeat = Clock::now();
                try {
                    const JsonValue frame = parseJson(payload);
                    const std::string type =
                        frame.has("type")
                            ? frame.at("type").asString()
                            : std::string();
                    if (type == "result") {
                        a.pendingResult = resultFromFrame(payload);
                        a.rawResult = payload;
                        a.gotResult = true;
                    } else if (type == "checkpoint-written") {
                        a.lastCheckpoint =
                            frame.at("path").asString();
                        notifyWaiters(
                            a.id,
                            progressFrameJson(a.id, "checkpoint",
                                              a.lastCheckpoint,
                                              a.attempt));
                    }
                    // heartbeats only refresh lastBeat, done above
                } catch (const std::exception &e) {
                    a.frameError = e.what();
                }
            }
            if (got == 0) {
                close(a.fromFd);
                a.fromFd = -1;
                return;
            }
            if (got < 0)
                return; // would block
        }
    };

    auto killWorker = [&](ActiveJob &a, const std::string &reason) {
        if (a.killReason.empty())
            a.killReason = reason;
        if (!a.termSent) {
            signalChild(a.pid, SIGTERM);
            a.termSent = true;
            a.termAt = Clock::now();
        }
    };

    auto classifyExit = [&](ActiveJob &a,
                            const WaitStatus &st) -> SweepResult {
        // A worker that raced its own success against a kill still
        // wins: real results are never discarded.
        if (a.gotResult && a.pendingResult.ok()) {
            SweepResult r = a.pendingResult;
            r.attempts += a.attempt - 1;
            return r;
        }
        if (!a.killReason.empty()) {
            SweepResult r;
            r.attempts = a.attempt;
            r.failureReason = a.killReason;
            r.error = a.killReason == "hung"
                          ? "worker missed " +
                                std::to_string(
                                    opt_.heartbeatMissLimit) +
                                " heartbeats and was killed (" +
                                st.describe() + ")"
                          : "worker exceeded its wall-clock "
                            "deadline (" +
                                st.describe() + ")";
            return r;
        }
        if (a.gotResult) {
            SweepResult r = a.pendingResult;
            r.attempts += a.attempt - 1;
            return r;
        }
        SweepResult r;
        r.attempts = a.attempt;
        if (st.signaled && st.termSignal == SIGXCPU) {
            r.failureReason = "walltime";
            r.error = "worker hit its RLIMIT_CPU cap (" +
                      st.describe() + ")";
        } else {
            r.failureReason = "crashed";
            r.error = "worker died without reporting a result (" +
                      st.describe() +
                      (a.frameError.empty()
                           ? std::string()
                           : "; last frame error: " + a.frameError) +
                      ")";
        }
        return r;
    };

    auto reapActive = [&](ActiveJob &a, const WaitStatus &st) {
        drainWorker(a); // pull buffered frames (often the result)
        if (a.fromFd >= 0) {
            close(a.fromFd);
            a.fromFd = -1;
        }
        a.pid = -1;

        SweepResult r = classifyExit(a, st);

        if (r.ok()) {
            // Durability order: cache entry, then done record, then
            // the announcement. A crash between the first two is the
            // replay-cached window the restart path closes.
            cache.store(a.cacheKey, a.rawResult);
            finishActive(a, "ok", !a.cancelRequested, a.rawResult);
            return;
        }

        if (a.cancelRequested) {
            // Already journaled as cancelled when requested; just
            // tell the waiters how the worker went down.
            finishActive(a, "cancelled", false,
                         a.gotResult
                             ? a.rawResult
                             : resultFrameJson(r, a.attempt));
            return;
        }

        if (stopping) {
            // Shutdown: the job stays pending in the journal for the
            // next daemon; waiters get a cancelled result so no
            // client hangs on a daemon that is going away.
            finishActive(a, "deferred", false,
                         a.gotResult
                             ? a.rawResult
                             : resultFrameJson(r, a.attempt));
            return;
        }

        const bool retryable = r.failureReason == "crashed" ||
                               r.failureReason == "oom" ||
                               r.failureReason == "hung";
        if (retryable && a.attempt < opt_.maxAttemptsPerJob) {
            const double delay =
                backoffDelaySec(opt_.backoff, a.name, a.attempt);
            a.running = false;
            a.readyAt = after(delay);
            emit("retry", a.name + " " + r.failureReason);
            notifyWaiters(a.id,
                          progressFrameJson(a.id, "retry",
                                            r.failureReason,
                                            a.attempt));
            return;
        }

        finishActive(a, r.failureReason.empty() ? "error"
                                                : r.failureReason,
                     true,
                     a.gotResult ? a.rawResult
                                 : resultFrameJson(r, a.attempt));
    };

    auto statusReplyJson = [&]() {
        std::size_t running = 0, backoff = 0;
        for (const ActiveJob &a : actives) {
            if (a.finished)
                continue;
            (a.running ? running : backoff) += 1;
        }
        std::string out = "{\"type\":\"status-reply\",\"workers\":" +
                          std::to_string(opt_.workers);
        out += ",\"pending\":" +
               std::to_string(queue.pending().size());
        out += ",\"running\":" + std::to_string(running);
        out += ",\"backoff\":" + std::to_string(backoff);
        out += ",\"jobs\":[";
        bool first = true;
        for (const QueuedJob &q : queue.pending()) {
            if (!first)
                out += ',';
            first = false;
            const ActiveJob *a = findActive(q.id);
            out += "{\"job\":" + std::to_string(q.id);
            out += ",\"name\":" + frameJsonQuote(q.name);
            out += ",\"client\":" + frameJsonQuote(q.client);
            out += ",\"priority\":" + std::to_string(q.priority);
            out += ",\"state\":\"";
            out += !a ? "queued" : (a->running ? "running" : "backoff");
            out += "\",\"attempt\":" +
                   std::to_string(a ? a->attempt : 0);
            out += "}";
        }
        out += "],\"cache\":{\"entries\":" +
               std::to_string(cache.entries());
        out += ",\"hits\":" + std::to_string(cache.hits());
        out += ",\"misses\":" + std::to_string(cache.misses());
        out += "}}";
        return out;
    };

    auto handleClientFrame = [&](int connId,
                                 const std::string &payload) {
        try {
            const JsonValue doc = parseJson(payload);
            const std::string type = doc.at("type").asString();
            if (type == "submit") {
                if (stopping) {
                    queueFrame(connId,
                               errorFrameJson(
                                   "daemon is shutting down"));
                    return;
                }
                const ServiceSubmit sub = submitFromJson(doc);
                const std::string name = workloadJobName(sub.spec);
                const std::uint32_t sig = configSignature(
                    sub.spec.cfg, sub.spec.cfg.scheduler ==
                                      SchedulerKind::CawsOracle);
                const std::string key = serviceCacheKey(name, sig);

                std::string rawResult;
                if (cache.lookup(key, rawResult)) {
                    // Served from cache: the stored frame replays
                    // byte-identically, marked cached:true.
                    queueFrame(connId,
                               queuedFrameJson(0, name, 0, false));
                    queueFrame(connId,
                               resultEnvelopeJson(0, name, true,
                                                  rawResult));
                    emit("cache-hit", name);
                    return;
                }
                for (const QueuedJob &q : queue.pending()) {
                    if (q.cacheKey == key) {
                        // Identical submission in flight: attach to
                        // it instead of computing twice.
                        waiters[q.id].push_back(connId);
                        queueFrame(connId,
                                   queuedFrameJson(q.id, q.name, 0,
                                                   true));
                        emit("coalesced", name);
                        return;
                    }
                }
                const std::uint64_t id =
                    queue.submit(name, sub.client, sub.priority, key,
                                 sub.spec);
                waiters[id].push_back(connId);
                queueFrame(connId,
                           queuedFrameJson(id, name,
                                           queue.pending().size(),
                                           false));
                emit("submit", name);
            } else if (type == "status") {
                queueFrame(connId, statusReplyJson());
            } else if (type == "cancel") {
                const std::uint64_t id = doc.at("job").asU64();
                if (ActiveJob *a = findActive(id)) {
                    if (!a->cancelRequested) {
                        queue.markCancelled(id);
                        a->cancelRequested = true;
                        if (a->running) {
                            killWorker(*a, "");
                        } else {
                            SweepResult r;
                            r.attempts = a->attempt;
                            r.failureReason = "cancelled";
                            r.error = "cancelled while backing off";
                            finishActive(*a, "cancelled", false,
                                         resultFrameJson(
                                             r, a->attempt));
                        }
                    }
                    queueFrame(connId,
                               "{\"type\":\"cancelled\",\"job\":" +
                                   std::to_string(id) +
                                   ",\"state\":\"running\"}");
                } else if (const QueuedJob *q = queue.find(id)) {
                    const std::string name = q->name;
                    queue.markCancelled(id);
                    SweepResult r;
                    r.failureReason = "cancelled";
                    r.error = "cancelled before the job ran";
                    notifyWaiters(id,
                                  resultEnvelopeJson(
                                      id, name, false,
                                      resultFrameJson(r, 0)));
                    waiters.erase(id);
                    queueFrame(connId,
                               "{\"type\":\"cancelled\",\"job\":" +
                                   std::to_string(id) +
                                   ",\"state\":\"queued\"}");
                    emit("cancel", name);
                } else {
                    queueFrame(connId,
                               errorFrameJson(
                                   "unknown job " +
                                   std::to_string(id)));
                }
            } else {
                queueFrame(connId,
                           errorFrameJson("unknown frame type '" +
                                          type + "'"));
            }
        } catch (const std::exception &e) {
            queueFrame(connId, errorFrameJson(e.what()));
        }
    };

    // -----------------------------------------------------------------
    // Event loop.
    // -----------------------------------------------------------------
    for (;;) {
        const bool stopNow =
            opt_.stopFlag &&
            opt_.stopFlag->load(std::memory_order_relaxed);
        if (stopNow && !stopping) {
            stopping = true;
            emit("stopping", "");
            for (ActiveJob &a : actives) {
                if (a.finished)
                    continue;
                if (a.running) {
                    // Plain SIGTERM: the worker checkpoints and the
                    // job stays pending for the next daemon.
                    if (!a.termSent) {
                        signalChild(a.pid, SIGTERM);
                        a.termSent = true;
                        a.termAt = Clock::now();
                    }
                } else {
                    // Backoff slot: nothing to kill; the journal
                    // still holds the job as pending.
                    notifyWaiters(
                        a.id,
                        progressFrameJson(a.id, "deferred",
                                          "daemon shutting down",
                                          a.attempt));
                    waiters.erase(a.id);
                    a.finished = true;
                }
            }
        }

        actives.erase(std::remove_if(actives.begin(), actives.end(),
                                     [](const ActiveJob &a) {
                                         return a.finished;
                                     }),
                      actives.end());

        if (stopping && actives.empty())
            break;

        // Launch whatever fits: overdue backoff respawns first (they
        // already hold a slot), then fresh picks under the quota.
        if (!stopping) {
            for (ActiveJob &a : actives)
                if (!a.running && Clock::now() >= a.readyAt)
                    spawnActive(a);
            while (static_cast<int>(actives.size()) < opt_.workers) {
                std::unordered_map<std::string, int> perClient;
                std::unordered_set<std::uint64_t> busy;
                for (const ActiveJob &a : actives) {
                    ++perClient[a.client];
                    busy.insert(a.id);
                }
                const QueuedJob *q =
                    pickNextJob(queue.pending(), perClient,
                                opt_.clientQuota, busy);
                if (!q)
                    break;
                startJob(*q);
            }
        }

        // One poll covers the listener, every client (write interest
        // only while output is buffered) and every worker pipe;
        // bounded so liveness timers and the stop flag stay fresh.
        std::vector<pollfd> fds;
        fds.push_back(pollfd{listenFd, POLLIN, 0});
        std::vector<int> clientIds;
        for (auto &entry : clients) {
            ClientConn &conn = entry.second;
            short events = POLLIN;
            if (conn.outPos < conn.outBuf.size())
                events |= POLLOUT;
            fds.push_back(pollfd{conn.fd, events, 0});
            clientIds.push_back(entry.first);
        }
        for (const ActiveJob &a : actives)
            if (a.running && a.fromFd >= 0)
                fds.push_back(pollfd{a.fromFd, POLLIN, 0});
        poll(fds.data(), static_cast<nfds_t>(fds.size()), 20);

        // Accept whoever queued up (refused while stopping).
        for (;;) {
            const int fd = acceptConnection(listenFd);
            if (fd < 0)
                break;
            if (stopping) {
                close(fd);
                continue;
            }
            setNonBlocking(fd);
            ClientConn conn;
            conn.fd = fd;
            clients.emplace(nextConnId++, std::move(conn));
        }

        // Client traffic: drain, dispatch complete frames, flush
        // buffered replies.
        for (auto &entry : clients) {
            const int connId = entry.first;
            ClientConn &conn = entry.second;
            if (conn.dead)
                continue;
            const DrainStatus ds =
                drainAvailable(conn.fd, conn.reader);
            std::string payload;
            while (conn.reader.next(payload))
                handleClientFrame(connId, payload);
            if (conn.reader.corrupt()) {
                queueFrame(connId,
                           errorFrameJson("corrupt frame stream"));
                flushClient(conn);
                conn.dead = true;
            } else if (ds == DrainStatus::Eof ||
                       ds == DrainStatus::Reset) {
                // A client that vanished mid-job is fine: the job
                // runs to the cache either way.
                conn.dead = true;
            } else {
                flushClient(conn);
            }
        }
        for (auto it = clients.begin(); it != clients.end();) {
            if (!it->second.dead) {
                ++it;
                continue;
            }
            close(it->second.fd);
            for (auto &w : waiters)
                w.second.erase(std::remove(w.second.begin(),
                                           w.second.end(), it->first),
                               w.second.end());
            it = clients.erase(it);
        }

        // Worker traffic, exits, liveness and deadlines.
        for (ActiveJob &a : actives) {
            if (!a.running || a.finished)
                continue;
            if (a.fromFd >= 0)
                drainWorker(a);
            if (const auto st = pollChild(a.pid)) {
                reapActive(a, *st);
                continue;
            }
            if (a.termSent &&
                secondsSince(a.termAt) > opt_.gracePeriodSec) {
                signalChild(a.pid, SIGKILL);
                continue;
            }
            if (a.termSent)
                continue;
            if (!a.gotResult &&
                secondsSince(a.lastBeat) > hungAfterSec)
                killWorker(a, "hung");
            else if (!a.gotResult && deadlineSec > 0.0 &&
                     secondsSince(a.started) > deadlineSec)
                killWorker(a, "walltime");
        }
    }

    for (auto &entry : clients) {
        flushClient(entry.second);
        close(entry.second.fd);
    }
    close(listenFd);
    ::unlink(opt_.socketPath.c_str());
    emit("stopped", "");
    return 0;
}

} // namespace cawa
