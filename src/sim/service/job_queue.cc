#include "sim/service/job_queue.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "sim/service/protocol.hh"
#include "sim/supervisor.hh"

namespace cawa
{

const QueuedJob *
pickNextJob(const std::vector<QueuedJob> &pending,
            const std::unordered_map<std::string, int> &runningPerClient,
            int clientQuota,
            const std::unordered_set<std::uint64_t> &busy)
{
    const QueuedJob *best = nullptr;
    for (const QueuedJob &job : pending) {
        if (busy.count(job.id))
            continue;
        if (clientQuota > 0) {
            const auto it = runningPerClient.find(job.client);
            if (it != runningPerClient.end() &&
                it->second >= clientQuota)
                continue;
        }
        if (!best || job.priority > best->priority ||
            (job.priority == best->priority && job.id < best->id))
            best = &job;
    }
    return best;
}

const QueuedJob *
ServiceJobQueue::find(std::uint64_t id) const
{
    for (const QueuedJob &job : pending_)
        if (job.id == id)
            return &job;
    return nullptr;
}

void
ServiceJobQueue::open(const std::string &path)
{
    // Lock + torn-tail repair first, then replay: the flock makes a
    // second daemon on the same state directory fail fast instead of
    // double-running the queue.
    journal_.open(path);
    pending_.clear();
    nextId_ = 1;

    std::ifstream in(path);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        try {
            const JsonValue doc = parseJson(line);
            const std::string op = doc.at("op").asString();
            const std::uint64_t id = doc.at("job").asU64();
            nextId_ = std::max(nextId_, id + 1);
            if (op == "submit") {
                QueuedJob job;
                job.id = id;
                job.name = doc.at("name").asString();
                job.client = doc.at("client").asString();
                job.priority =
                    static_cast<int>(doc.at("priority").asI64());
                job.cacheKey = doc.at("cacheKey").asString();
                job.spec = workloadSpecFromJson(doc.at("spec"));
                retire(id); // a replayed duplicate id: last wins
                pending_.push_back(std::move(job));
            } else if (op == "done" || op == "cancel") {
                retire(id);
            } else {
                throw std::runtime_error("unknown op '" + op + "'");
            }
        } catch (const std::exception &e) {
            // Same stance as the sweep journal reader: a damaged
            // line loses that line, never the queue.
            std::fprintf(stderr,
                         "cawad: skipping bad queue journal line %zu "
                         "in %s: %s\n",
                         lineno, path.c_str(), e.what());
        }
    }
}

std::uint64_t
ServiceJobQueue::submit(const std::string &name,
                        const std::string &client, int priority,
                        const std::string &cacheKey,
                        const WorkloadJobSpec &spec)
{
    QueuedJob job;
    job.id = nextId_++;
    job.name = name;
    job.client = client;
    job.priority = priority;
    job.cacheKey = cacheKey;
    job.spec = spec;

    std::string line = "{\"op\":\"submit\",\"job\":";
    line += std::to_string(job.id);
    line += ",\"name\":";
    line += frameJsonQuote(name);
    line += ",\"client\":";
    line += frameJsonQuote(client);
    line += ",\"priority\":" + std::to_string(priority);
    line += ",\"cacheKey\":";
    line += frameJsonQuote(cacheKey);
    line += ",\"spec\":";
    line += serviceSpecJson(spec);
    line += "}";
    journal_.appendLine(line);

    pending_.push_back(std::move(job));
    return pending_.back().id;
}

void
ServiceJobQueue::markDone(std::uint64_t id, const std::string &status)
{
    journal_.appendLine("{\"op\":\"done\",\"job\":" +
                        std::to_string(id) + ",\"status\":" +
                        frameJsonQuote(status) + "}");
    retire(id);
}

void
ServiceJobQueue::markCancelled(std::uint64_t id)
{
    journal_.appendLine("{\"op\":\"cancel\",\"job\":" +
                        std::to_string(id) + "}");
    retire(id);
}

void
ServiceJobQueue::retire(std::uint64_t id)
{
    pending_.erase(std::remove_if(pending_.begin(), pending_.end(),
                                  [id](const QueuedJob &job) {
                                      return job.id == id;
                                  }),
                   pending_.end());
}

} // namespace cawa
