#include "sim/service/result_cache.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "common/sim_error.hh"

namespace fs = std::filesystem;

namespace cawa
{

namespace
{

[[noreturn]] void
cacheFail(const std::string &path, const char *what)
{
    throw SimError(SimErrorKind::Journal,
                   std::string(what) + ": " + path);
}

} // namespace

ResultCache::ResultCache(std::string dir) : dir_(std::move(dir))
{
    std::error_code ec;
    fs::create_directories(dir_, ec);
    if (ec)
        cacheFail(dir_, "cannot create result cache directory");
}

std::string
ResultCache::entryPath(const std::string &key) const
{
    return (fs::path(dir_) / (key + ".result")).string();
}

bool
ResultCache::lookup(const std::string &key, std::string &rawResultFrame)
{
    std::ifstream in(entryPath(key), std::ios::binary);
    if (!in) {
        ++misses_;
        return false;
    }
    std::ostringstream body;
    body << in.rdbuf();
    if (!in.good() && !in.eof()) {
        ++misses_;
        return false;
    }
    rawResultFrame = body.str();
    ++hits_;
    return true;
}

bool
ResultCache::contains(const std::string &key) const
{
    std::error_code ec;
    return fs::exists(entryPath(key), ec);
}

void
ResultCache::store(const std::string &key,
                   const std::string &rawResultFrame)
{
    const std::string path = entryPath(key);
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                          0644);
    if (fd < 0)
        cacheFail(tmp, "cannot open result cache temp");
    std::size_t off = 0;
    while (off < rawResultFrame.size()) {
        const ssize_t n = ::write(fd, rawResultFrame.data() + off,
                                  rawResultFrame.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            ::unlink(tmp.c_str());
            cacheFail(tmp, "result cache write failed");
        }
        off += static_cast<std::size_t>(n);
    }
    // Durable before visible: fsync the bytes, then give them the
    // entry's name. A crash mid-store leaves only the temp file,
    // which no lookup ever reads.
    ::fsync(fd);
    ::close(fd);
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        cacheFail(path, "result cache rename failed");
    }
}

std::size_t
ResultCache::entries() const
{
    std::size_t n = 0;
    std::error_code ec;
    for (const auto &e : fs::directory_iterator(dir_, ec))
        if (e.path().extension() == ".result")
            ++n;
    return n;
}

} // namespace cawa
