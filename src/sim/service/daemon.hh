/**
 * @file
 * cawad: the simulation-as-a-service daemon. A single-threaded
 * poll() event loop serves any number of concurrent clients over a
 * Unix-domain stream socket, speaking the frame vocabulary of
 * sim/service/protocol.hh, and executes jobs in sandboxed worker
 * subprocesses exactly like the sweep supervisor: exec'd
 * `<argv0> --worker` children that stream heartbeat /
 * checkpoint-written / result frames back over a pipe, with
 * setrlimit caps, missed-heartbeat hang detection, SIGTERM ->
 * SIGKILL escalation and capped deterministic-jitter backoff
 * retries for crashed/oom/hung workers.
 *
 * Durability: every submit/done/cancel is an fsync'ed line in the
 * queue journal (sim/service/job_queue.hh) and every successful
 * result is an atomically-written entry in the result cache
 * (sim/service/result_cache.hh), both under the daemon's state
 * directory. Kill the daemon at any instant and a restart replays
 * the journal: finished jobs are served from the cache (never
 * recomputed, never lost) and in-flight jobs re-run from their last
 * on-disk checkpoint (never duplicated -- their done record was
 * never written).
 *
 * Fairness: at most `clientQuota` jobs per client name run (or hold
 * a backoff slot) at once; among eligible jobs the highest priority
 * wins, FIFO within a priority. Identical submissions coalesce: a
 * submit whose cache key matches an in-flight job attaches to that
 * job instead of enqueueing a duplicate, and one whose key is
 * already cached is answered immediately with the byte-identical
 * cached result frame and "cached":true.
 */

#ifndef CAWA_SIM_SERVICE_DAEMON_HH
#define CAWA_SIM_SERVICE_DAEMON_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "common/subprocess.hh"
#include "sim/supervisor.hh"

namespace cawa
{

struct DaemonOptions
{
    /** Unix-domain socket path clients connect to. */
    std::string socketPath;
    /**
     * State directory: queue.jsonl (persistent queue), cache/
     * (result cache), ckpt/ (per-job checkpoints). Created when
     * missing.
     */
    std::string stateDir;

    /** Concurrent worker subprocesses. */
    int workers = 1;
    /** Running/backoff jobs one client name may hold; <= 0 = off. */
    int clientQuota = 2;

    /** Worker liveness knobs (sweep supervisor semantics). */
    double heartbeatIntervalSec = 0.25;
    int heartbeatMissLimit = 20;
    double gracePeriodSec = 2.0;

    /** Worker executions per job (first run + crash/oom/hung
     *  respawns). */
    int maxAttemptsPerJob = 3;
    /** In-worker runSweepJob attempts (the --retries knob). */
    int jobMaxAttempts = 1;
    BackoffPolicy backoff;

    /** setrlimit caps applied in each worker. */
    ChildLimits limits;

    /** Per-job wall-clock budget shipped to workers; 0 = off. */
    double jobTimeoutSec = 0.0;
    /** Cycles between worker checkpoints (restart granularity). */
    std::uint64_t checkpointInterval = 200'000;

    /**
     * Binary exec'd as `workerArgv0 --worker` per job; normally the
     * daemon's own /proc/self/exe. Must speak the worker-spec frame
     * protocol (workloads/sweep_jobs.hh runWorkerModeFromFds).
     */
    std::string workerArgv0;

    /**
     * Graceful shutdown: when set, stop accepting work, SIGTERM
     * running workers (each checkpoints and reports cancelled --
     * their jobs stay pending in the journal for the next daemon),
     * flush clients and return from run().
     */
    const std::atomic<bool> *stopFlag = nullptr;

    /** Observer for daemon events, used by logging and tests. */
    std::function<void(const std::string &event,
                       const std::string &detail)>
        onEvent;
};

class SimDaemon
{
  public:
    explicit SimDaemon(DaemonOptions opt);

    /**
     * Bind the socket, replay the queue journal and serve until the
     * stop flag is raised. Returns 0 on a clean shutdown. Throws
     * SimError when the socket or state directory are unusable or a
     * second daemon holds the queue lock.
     */
    int run();

    const DaemonOptions &options() const { return opt_; }

  private:
    DaemonOptions opt_;
};

} // namespace cawa

#endif // CAWA_SIM_SERVICE_DAEMON_HH
