#include "sim/service/protocol.hh"

#include "common/sim_error.hh"
#include "sim/supervisor.hh"
#include "workloads/registry.hh"

namespace cawa
{

ServiceSubmit
submitFromJson(const JsonValue &doc)
{
    if (!doc.has("spec"))
        throw SimError(SimErrorKind::Config,
                       "submit frame has no \"spec\" object");
    ServiceSubmit sub;
    sub.spec = workloadSpecFromJson(doc.at("spec"));
    if (doc.has("priority")) {
        const std::int64_t p = doc.at("priority").asI64();
        if (p < -100 || p > 100)
            throw SimError(SimErrorKind::Config,
                           "priority out of range [-100, 100]");
        sub.priority = static_cast<int>(p);
    }
    if (doc.has("client"))
        sub.client = doc.at("client").asString();
    if (sub.client.empty())
        sub.client = "anon";
    return sub;
}

std::string
serviceSpecJson(const WorkloadJobSpec &spec)
{
    std::string out = "{\"workload\":";
    out += frameJsonQuote(spec.workload);
    out += ",\"scheduler\":";
    out += frameJsonQuote(schedulerKindName(spec.cfg.scheduler));
    out += ",\"policy\":";
    out += frameJsonQuote(cachePolicyKindName(spec.cfg.l1Policy));
    out += ",\"seed\":" + std::to_string(spec.params.seed);
    out += ",\"scale\":" + std::to_string(spec.params.scale);
    out += "}";
    return out;
}

std::string
serviceCacheKey(const std::string &kernelId, std::uint32_t sig)
{
    std::string key;
    key.reserve(kernelId.size() + 9);
    for (const char c : kernelId) {
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '.' ||
                        c == '_' || c == '-';
        key += ok ? c : '_';
    }
    char hex[16];
    std::snprintf(hex, sizeof(hex), "-%08x", sig);
    key += hex;
    return key;
}

std::string
queuedFrameJson(std::uint64_t job, const std::string &name,
                std::size_t position, bool coalesced)
{
    std::string out = "{\"type\":\"queued\",\"job\":";
    out += std::to_string(job);
    out += ",\"name\":";
    out += frameJsonQuote(name);
    out += ",\"position\":" + std::to_string(position);
    out += ",\"coalesced\":";
    out += coalesced ? "true" : "false";
    out += "}";
    return out;
}

std::string
progressFrameJson(std::uint64_t job, const std::string &event,
                  const std::string &detail, int attempt)
{
    std::string out = "{\"type\":\"progress\",\"job\":";
    out += std::to_string(job);
    out += ",\"event\":";
    out += frameJsonQuote(event);
    out += ",\"detail\":";
    out += frameJsonQuote(detail);
    out += ",\"attempt\":" + std::to_string(attempt);
    out += "}";
    return out;
}

std::string
resultEnvelopeJson(std::uint64_t job, const std::string &name,
                   bool cached, const std::string &rawResultFrame)
{
    std::string out = "{\"type\":\"result\",\"job\":";
    out += std::to_string(job);
    out += ",\"name\":";
    out += frameJsonQuote(name);
    out += ",\"cached\":";
    out += cached ? "true" : "false";
    out += ",\"result\":";
    out += rawResultFrame;
    out += "}";
    return out;
}

std::string
errorFrameJson(const std::string &message)
{
    return "{\"type\":\"error\",\"message\":" +
           frameJsonQuote(message) + "}";
}

} // namespace cawa
