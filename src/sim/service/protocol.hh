/**
 * @file
 * Wire protocol of the cawad simulation service: the client/daemon
 * frame vocabulary layered on the common length-prefixed framing
 * (common/subprocess.hh), plus the result-cache key derivation.
 *
 * Client -> daemon frames:
 *
 *   {"type":"submit","spec":{workload,scheduler,policy,seed,scale},
 *    "priority":P,"client":"name"}       enqueue one job
 *   {"type":"status"}                    queue + cache snapshot
 *   {"type":"cancel","job":N}            cancel a queued/running job
 *
 * Daemon -> client frames:
 *
 *   {"type":"queued","job":N,"name":"...","position":K,
 *    "coalesced":B}                      submit accepted
 *   {"type":"progress","job":N,"event":"...","detail":"...",
 *    "attempt":A}                        spawn/checkpoint/retry/...
 *   {"type":"result","job":N,"name":"...","cached":B,
 *    "result":{...}}                     terminal, one per submit
 *   {"type":"status-reply", ...}         reply to status
 *   {"type":"error","message":"..."}     malformed request
 *
 * The embedded "result" object is the worker protocol's result frame
 * (sim/supervisor.hh resultFrameJson) spliced in verbatim -- never
 * re-serialized -- so a cached replay is byte-identical to the fresh
 * run that populated the cache.
 */

#ifndef CAWA_SIM_SERVICE_PROTOCOL_HH
#define CAWA_SIM_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <string>

#include "sim/report_json.hh"
#include "workloads/sweep_jobs.hh"

namespace cawa
{

/** Decoded submit frame. */
struct ServiceSubmit
{
    WorkloadJobSpec spec;
    int priority = 0;        ///< higher runs first
    std::string client;      ///< fairness-quota bucket, "" = "anon"
};

/**
 * Parse a submit frame (already JSON-parsed). Throws SimError (kind
 * Config) on a malformed spec, unknown workload/scheduler/policy, or
 * an out-of-range priority (accepted range [-100, 100]).
 */
ServiceSubmit submitFromJson(const JsonValue &doc);

/**
 * Canonical JSON of the portable job spec core -- the exact field
 * set workloadSpecFromJson() accepts. Used for submit frames and the
 * queue journal, so a replayed spec parses with the same code path
 * as a fresh one.
 */
std::string serviceSpecJson(const WorkloadJobSpec &spec);

/**
 * Result-cache key for (kernel id, config signature): the kernel id
 * sanitized to [A-Za-z0-9._-] (anything else becomes '_') plus the
 * signature as 8 hex digits, e.g. "bfs.gcaws.cacp.seed1.scale0.05-
 * 1a2b3c4d". The kernel id is workloadJobName(), which carries the
 * workload/scheduler/policy/seed/scale identity; the signature
 * (sim/gpu_config.hh configSignature) covers every semantic config
 * knob and nothing observational, so two submissions differing only
 * in trace/thread-count knobs share an entry.
 */
std::string serviceCacheKey(const std::string &kernelId,
                            std::uint32_t sig);

std::string queuedFrameJson(std::uint64_t job, const std::string &name,
                            std::size_t position, bool coalesced);
std::string progressFrameJson(std::uint64_t job,
                              const std::string &event,
                              const std::string &detail, int attempt);
/** @p rawResultFrame is spliced in verbatim (must be a JSON object). */
std::string resultEnvelopeJson(std::uint64_t job,
                               const std::string &name, bool cached,
                               const std::string &rawResultFrame);
std::string errorFrameJson(const std::string &message);

} // namespace cawa

#endif // CAWA_SIM_SERVICE_PROTOCOL_HH
