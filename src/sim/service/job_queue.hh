/**
 * @file
 * Persistent priority job queue for cawad, layered on the sweep
 * journal's locked, fsync-per-append JSONL machinery (JournalWriter).
 * Every queue transition is one appended line:
 *
 *   {"op":"submit","job":N,"name":"...","client":"...",
 *    "priority":P,"cacheKey":"...","spec":{...}}
 *   {"op":"done","job":N,"status":"ok"}
 *   {"op":"cancel","job":N}
 *
 * so a daemon killed at any instant replays the intact prefix on
 * restart and resumes with exactly the jobs that were submitted but
 * not finished: nothing lost (a submit is durable before it is
 * acknowledged) and nothing duplicated (a done is durable before the
 * result is announced, and a completed job's result lives in the
 * result cache keyed by the journaled cacheKey).
 *
 * The scheduling policy -- priority first, then per-client fairness
 * under a running-jobs quota, then FIFO -- is a pure function
 * (pickNextJob) over the pending list, so tests exercise it without
 * a daemon.
 */

#ifndef CAWA_SIM_SERVICE_JOB_QUEUE_HH
#define CAWA_SIM_SERVICE_JOB_QUEUE_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "sim/journal.hh"
#include "workloads/sweep_jobs.hh"

namespace cawa
{

/** One submitted-but-unfinished job. */
struct QueuedJob
{
    std::uint64_t id = 0;
    std::string name;     ///< workloadJobName() of the spec
    std::string client;   ///< fairness bucket
    int priority = 0;     ///< higher runs first
    std::string cacheKey; ///< serviceCacheKey() of (name, signature)
    WorkloadJobSpec spec;
};

/**
 * Pick the next pending job to spawn: skip ids in @p busy (already
 * running or backing off) and clients at their @p clientQuota of
 * running jobs (quota <= 0 means unlimited); among the rest the
 * highest priority wins, ties broken by lowest id (submission
 * order). Returns nullptr when nothing is eligible.
 */
const QueuedJob *pickNextJob(
    const std::vector<QueuedJob> &pending,
    const std::unordered_map<std::string, int> &runningPerClient,
    int clientQuota, const std::unordered_set<std::uint64_t> &busy);

class ServiceJobQueue
{
  public:
    /**
     * Open (lock, repair, replay) the queue journal at @p path.
     * Unparseable lines are skipped with a stderr warning, exactly
     * like the sweep journal reader. Throws SimError (kind Journal)
     * when another daemon holds the lock.
     */
    void open(const std::string &path);
    bool isOpen() const { return journal_.isOpen(); }

    /** Submitted-but-unfinished jobs, in submission order. */
    const std::vector<QueuedJob> &pending() const { return pending_; }

    const QueuedJob *find(std::uint64_t id) const;

    /**
     * Durably record one submission and return its job id. The
     * append hits disk before this returns, so an acknowledged
     * submit survives any later crash.
     */
    std::uint64_t submit(const std::string &name,
                         const std::string &client, int priority,
                         const std::string &cacheKey,
                         const WorkloadJobSpec &spec);

    /** Durably retire @p id as finished under @p status. */
    void markDone(std::uint64_t id, const std::string &status);

    /** Durably retire @p id as cancelled by a client. */
    void markCancelled(std::uint64_t id);

  private:
    void retire(std::uint64_t id);

    JournalWriter journal_;
    std::vector<QueuedJob> pending_;
    std::uint64_t nextId_ = 1;
};

} // namespace cawa

#endif // CAWA_SIM_SERVICE_JOB_QUEUE_HH
