/**
 * @file
 * cawad result cache: one file per (kernel id, configSignature) key
 * under the daemon's state directory, holding the worker protocol's
 * raw result frame verbatim. Because the frame is stored and replayed
 * as bytes -- never re-parsed and re-serialized -- a cache hit is
 * byte-identical to the fresh run that populated the entry, and the
 * report a client regenerates from it is byte-identical to a direct
 * cawa_sweep --out document (the v3 round-trip is exact).
 *
 * Only successful results are cached: failures (crash, walltime,
 * verify-failed) are legitimate re-run candidates, not answers.
 * Stores are crash-safe (write temp + fsync + rename), so a daemon
 * killed mid-store can never leave a torn entry that a later lookup
 * would serve.
 */

#ifndef CAWA_SIM_SERVICE_RESULT_CACHE_HH
#define CAWA_SIM_SERVICE_RESULT_CACHE_HH

#include <cstdint>
#include <string>

namespace cawa
{

class ResultCache
{
  public:
    /** Bind to @p dir, creating it (and parents) when missing. */
    explicit ResultCache(std::string dir);

    /**
     * Load the entry for @p key into @p rawResultFrame. Returns true
     * on a hit; bumps the hit/miss counters either way.
     */
    bool lookup(const std::string &key, std::string &rawResultFrame);

    /** Hit test without touching the counters (restart replay). */
    bool contains(const std::string &key) const;

    /**
     * Store @p rawResultFrame under @p key, atomically replacing any
     * previous entry. Throws SimError (kind Journal) on I/O failure
     * -- losing a cache write silently would turn later "cached"
     * replies into lies.
     */
    void store(const std::string &key,
               const std::string &rawResultFrame);

    /** Entries currently on disk (counted at call time). */
    std::size_t entries() const;

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }
    const std::string &dir() const { return dir_; }

  private:
    std::string entryPath(const std::string &key) const;

    std::string dir_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace cawa

#endif // CAWA_SIM_SERVICE_RESULT_CACHE_HH
