/**
 * @file
 * JSON export of simulation reports (schema "cawa-simreport-v3") and
 * a minimal JSON reader to load them back, used by the cawa_sweep
 * CLI, the golden-stats regression baseline and the determinism
 * tests.
 *
 * v3 emits every counter/histogram from the unified StatsRegistry as
 * one flat "stats" object ("l1.hits", "sched.0.issues", ...) in
 * registration order, replacing the hand-coded per-struct key lists
 * of v2. Older documents still read back: "cawa-simreport-v2" keeps
 * its explicit cycles/l1/l2/... keys, and "cawa-simreport-v1"
 * additionally derives exitStatus from the old timedOut flag.
 * JsonWriteOptions::schemaVersion = 2 reproduces the legacy v2
 * layout for compatibility tooling.
 *
 * The writer is deterministic: a given SimReport always serializes to
 * the same byte string (fixed key order, integers verbatim, doubles
 * with round-trippable precision), so byte comparison of two exports
 * is a valid equality test for two reports.
 */

#ifndef CAWA_SIM_REPORT_JSON_HH
#define CAWA_SIM_REPORT_JSON_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "mem/cache_stats.hh"
#include "sim/report.hh"

namespace cawa
{

struct JsonWriteOptions
{
    bool includeBlocks = true;   ///< per-block / per-warp records
    bool includeTrace = true;    ///< Fig 12 criticality trace
    bool includeDerived = true;  ///< ipc/mpki/disparity doubles
    bool pretty = true;          ///< indentation; false => one line
    /**
     * Report schema to emit: 3 (default) writes the registry-backed
     * "stats" object, 2 reproduces the legacy explicit-key layout.
     * Anything else throws.
     */
    int schemaVersion = 3;
};

/** Serialize @p stats alone (the same object the report embeds). */
std::string toJson(const CacheStats &stats,
                   const JsonWriteOptions &opt = {});

/** Serialize a full report as one JSON document. */
std::string toJson(const SimReport &report,
                   const JsonWriteOptions &opt = {});

/**
 * Serialize a failed sweep job as a first-class JSON document (schema
 * "cawa-sweepfailure-v1") so a sweep's output directory holds one
 * entry per job whether it succeeded or crashed: job name, the error
 * that killed it and how many attempts were made. @p reason, when
 * non-empty, adds a machine-readable failure class ("walltime",
 * "cancelled") alongside the human-readable error text.
 */
std::string failureToJson(const std::string &job,
                          const std::string &error, int attempts,
                          const JsonWriteOptions &opt = {},
                          const std::string &reason = {});

/**
 * Parsed JSON value. Objects preserve member order; numbers keep
 * their source text so unsigned 64-bit counters survive exactly.
 */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind() const { return kind_; }
    bool isNumber() const { return kind_ == Kind::Number; }

    bool asBool() const;
    double asDouble() const;
    std::uint64_t asU64() const;
    std::int64_t asI64() const;
    const std::string &asString() const;

    const std::vector<JsonValue> &items() const;
    const std::vector<std::pair<std::string, JsonValue>> &members() const;

    bool has(const std::string &key) const;
    /** Object member lookup; throws std::runtime_error when absent. */
    const JsonValue &at(const std::string &key) const;

    /** Byte offset of this value in the parsed document. */
    std::size_t srcOffset() const { return srcOffset_; }

  private:
    friend class JsonParser;

    /**
     * Every accessor mismatch reports where in the source document
     * the offending value sits (byte offset plus a short excerpt), so
     * "not a number" failures deep inside a report are actionable.
     */
    [[noreturn]] void typeFail(const char *expected) const;

    std::size_t srcOffset_ = 0;
    std::string excerpt_;   ///< ~20 source chars from srcOffset_

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::string scalar_; ///< number text or string payload
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/** Parse one JSON document; throws std::runtime_error on bad input. */
JsonValue parseJson(const std::string &text);

/** Rebuild the stats/report serialized by toJson(). */
CacheStats cacheStatsFromJson(const JsonValue &v);
SimReport reportFromJson(const JsonValue &v);
SimReport reportFromJson(const std::string &text);

} // namespace cawa

#endif // CAWA_SIM_REPORT_JSON_HH
