/**
 * @file
 * Oracle criticality for the CAWS baseline (Lee & Wu, PACT'14): a
 * profiling pass records each warp's execution time; a second run
 * feeds those times to the CAWS scheduler as static priorities.
 */

#ifndef CAWA_SIM_ORACLE_HH
#define CAWA_SIM_ORACLE_HH

#include "sim/gpu.hh"
#include "sm/records.hh"

namespace cawa
{

/** Extract the per-warp execution-time oracle from a profiling run. */
OracleTable buildOracle(const SimReport &profile);

/**
 * Convenience two-pass runner: profile under the baseline RR
 * scheduler on @p profile_mem, then run with the CAWS oracle
 * scheduler using @p cfg (whose scheduler field is overridden to
 * CawsOracle) on @p mem.
 */
SimReport runWithCawsOracle(const GpuConfig &cfg, MemoryImage &mem,
                            MemoryImage &profile_mem,
                            const KernelInfo &kernel);

} // namespace cawa

#endif // CAWA_SIM_ORACLE_HH
