/**
 * @file
 * Oracle criticality for the CAWS baseline (Lee & Wu, PACT'14): a
 * profiling pass records each warp's execution time; a second run
 * feeds those times to the CAWS scheduler as static priorities.
 */

#ifndef CAWA_SIM_ORACLE_HH
#define CAWA_SIM_ORACLE_HH

#include "sim/gpu.hh"
#include "sm/records.hh"

namespace cawa
{

/** Extract the per-warp execution-time oracle from a profiling run. */
OracleTable buildOracle(const SimReport &profile);

/**
 * Convenience two-pass runner: profile under the baseline RR
 * scheduler on @p profile_mem, then run with the CAWS oracle
 * scheduler using @p cfg (whose scheduler field is overridden to
 * CawsOracle) on @p mem.
 *
 * The profiling pass never checkpoints (its state is not the job's
 * state, and it must not clobber the measured pass's checkpoint
 * file); cfg's checkpoint settings apply to the measured pass only.
 * When @p resume_path is non-empty the measured pass restores from
 * that checkpoint instead of launching fresh -- the (deterministic)
 * profiling pass still re-runs first to rebuild the oracle table --
 * and *@p resumed is set to true after a successful restore.
 */
SimReport runWithCawsOracle(const GpuConfig &cfg, MemoryImage &mem,
                            MemoryImage &profile_mem,
                            const KernelInfo &kernel,
                            const std::string &resume_path = {},
                            bool *resumed = nullptr);

} // namespace cawa

#endif // CAWA_SIM_ORACLE_HH
