#include "sim/report.hh"

namespace cawa
{

const char *
exitStatusName(ExitStatus status)
{
    switch (status) {
      case ExitStatus::Completed: return "completed";
      case ExitStatus::Timeout: return "timeout";
      case ExitStatus::Deadlock: return "deadlock";
      case ExitStatus::Invariant: return "invariant";
    }
    return "?";
}

bool
exitStatusFromName(const std::string &name, ExitStatus &out)
{
    for (ExitStatus s : {ExitStatus::Completed, ExitStatus::Timeout,
                         ExitStatus::Deadlock, ExitStatus::Invariant}) {
        if (name == exitStatusName(s)) {
            out = s;
            return true;
        }
    }
    return false;
}

double
SimReport::avgDisparity() const
{
    double sum = 0.0;
    int n = 0;
    for (const auto &b : blocks) {
        if (b.warps.size() < 2)
            continue;
        sum += b.disparity();
        n++;
    }
    return n ? sum / n : 0.0;
}

double
SimReport::maxDisparity() const
{
    double best = 0.0;
    for (const auto &b : blocks)
        best = std::max(best, b.disparity());
    return best;
}

double
SimReport::cplAccuracy() const
{
    std::uint64_t hits = 0;
    std::uint64_t samples = 0;
    for (const auto &b : blocks) {
        if (b.cplSamples == 0 || b.warps.empty())
            continue;
        // Single-warp blocks: the critical warp is trivially
        // identified (the paper notes needle's 100% accuracy for
        // this reason) -- sampling skipped them, so count them as
        // fully correct with one sample's weight.
        if (b.warps.size() == 1) {
            hits += 1;
            samples += 1;
            continue;
        }
        const int crit = b.criticalWarp();
        hits += b.warps[crit].slowSamples;
        samples += b.cplSamples;
    }
    // Blocks that never got sampled but are single-warp still count.
    for (const auto &b : blocks) {
        if (b.cplSamples == 0 && b.warps.size() == 1) {
            hits += 1;
            samples += 1;
        }
    }
    return samples
        ? static_cast<double>(hits) / static_cast<double>(samples) : 0.0;
}

double
SimReport::memStallFraction() const
{
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const auto &b : blocks) {
        for (const auto &w : b.warps) {
            const Cycle t = w.execTime();
            if (t == 0)
                continue;
            sum += static_cast<double>(w.memStallCycles) / t;
            n++;
        }
    }
    return n ? sum / n : 0.0;
}

double
SimReport::schedWaitFraction() const
{
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const auto &b : blocks) {
        for (const auto &w : b.warps) {
            const Cycle t = w.execTime();
            if (t == 0)
                continue;
            sum += static_cast<double>(w.schedWaitCycles) / t;
            n++;
        }
    }
    return n ? sum / n : 0.0;
}

} // namespace cawa
