/**
 * @file
 * Simulation result report: aggregate counters plus the per-block and
 * trace records, with the derived metrics the paper's figures use
 * (IPC, MPKI, warp disparity, CPL accuracy, critical hit rates).
 */

#ifndef CAWA_SIM_REPORT_HH
#define CAWA_SIM_REPORT_HH

#include <string>
#include <vector>

#include "mem/cache_stats.hh"
#include "sm/records.hh"

namespace cawa
{

struct SimReport
{
    std::string kernelName;
    std::string schedulerName;
    std::string cachePolicyName;

    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    CacheStats l1;          ///< merged over all SMs
    CacheStats l2;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t icntMessages = 0;

    std::vector<BlockRecord> blocks;
    std::vector<TraceSample> trace;

    bool timedOut = false;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) / cycles : 0.0;
    }

    double mpki() const { return l1.mpki(instructions); }

    /** Mean over blocks of (slowest-fastest)/fastest warp time. */
    double avgDisparity() const;

    /** Largest per-block disparity in the run (Fig 1's metric). */
    double maxDisparity() const;

    /**
     * CPL prediction accuracy (Fig 11): over all sampled blocks, the
     * frequency with which the actually-critical warp was classified
     * slow, weighted by sample count.
     */
    double cplAccuracy() const;

    /** Mean fraction of warp time spent blocked on memory. */
    double memStallFraction() const;

    /** Mean fraction of warp time spent ready-but-not-scheduled. */
    double schedWaitFraction() const;
};

} // namespace cawa

#endif // CAWA_SIM_REPORT_HH
