/**
 * @file
 * Simulation result report: aggregate counters plus the per-block and
 * trace records, with the derived metrics the paper's figures use
 * (IPC, MPKI, warp disparity, CPL accuracy, critical hit rates).
 */

#ifndef CAWA_SIM_REPORT_HH
#define CAWA_SIM_REPORT_HH

#include <string>
#include <vector>

#include "common/stats.hh"
#include "mem/cache_stats.hh"
#include "sm/records.hh"

namespace cawa
{

/**
 * How a simulation run ended. Anything but Completed means the
 * reported counters describe a truncated run: Timeout hit the
 * maxCycles safety valve while still making progress, Deadlock was
 * stopped early by the watchdog's provable-wedge check (see
 * SimReport::diagnostic for the classified dump), and Invariant is
 * recorded by harness layers when the CAWA_CHECK auditor aborted the
 * run with a SimError.
 */
enum class ExitStatus
{
    Completed,
    Timeout,
    Deadlock,
    Invariant,
};

/** Stable lowercase name used in JSON ("completed", "deadlock", ...). */
const char *exitStatusName(ExitStatus status);

/** Inverse of exitStatusName(); returns false on unknown names. */
bool exitStatusFromName(const std::string &name, ExitStatus &out);

struct SimReport
{
    std::string kernelName;
    std::string schedulerName;
    std::string cachePolicyName;

    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    CacheStats l1;          ///< merged over all SMs
    CacheStats l2;
    std::uint64_t dramReads = 0;
    std::uint64_t dramWrites = 0;
    std::uint64_t icntMessages = 0;

    /**
     * The unified stats registry (common/stats.hh): every component
     * registers its counters/histograms here at the end of a run,
     * and the "stats" object of cawa-simreport-v3 is written from it
     * verbatim. The typed fields above are views onto well-known
     * entries, kept for ergonomic C++ access; when this is empty
     * (hand-built reports), the JSON writer synthesizes the
     * equivalent entries from the typed fields.
     */
    StatsRegistry stats;

    std::vector<BlockRecord> blocks;
    std::vector<TraceSample> trace;

    /**
     * Hot-path phase breakdown: wall-clock seconds spent inside the
     * tick loop's sections, summed over all SMs. Filled only when
     * GpuConfig::profilePhases was set (all zero otherwise) and
     * consumed directly by bench_sim_speed; deliberately absent from
     * the JSON report and checkpoint formats.
     */
    double phaseSchedSeconds = 0.0;   ///< ready-set build + pick + issue
    double phaseL1Seconds = 0.0;      ///< L1 drain + writebacks + LD/ST
    double phaseAccountSeconds = 0.0; ///< stall classification/charging
    double phaseCplSeconds = 0.0;     ///< CPL + trace sampling
    double phaseMemSeconds = 0.0;     ///< icnt + L2 + DRAM + fills

    bool timedOut = false;
    ExitStatus exitStatus = ExitStatus::Completed;

    /**
     * Structured failure dump (watchdog deadlock classification,
     * per-warp states, queue occupancies); empty on healthy runs and
     * only serialized to JSON when non-empty.
     */
    std::string diagnostic;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) / cycles : 0.0;
    }

    double mpki() const { return l1.mpki(instructions); }

    /** Mean over blocks of (slowest-fastest)/fastest warp time. */
    double avgDisparity() const;

    /** Largest per-block disparity in the run (Fig 1's metric). */
    double maxDisparity() const;

    /**
     * CPL prediction accuracy (Fig 11): over all sampled blocks, the
     * frequency with which the actually-critical warp was classified
     * slow, weighted by sample count.
     */
    double cplAccuracy() const;

    /** Mean fraction of warp time spent blocked on memory. */
    double memStallFraction() const;

    /** Mean fraction of warp time spent ready-but-not-scheduled. */
    double schedWaitFraction() const;
};

} // namespace cawa

#endif // CAWA_SIM_REPORT_HH
