/**
 * @file
 * Sharded sweep coordinator: splits a job matrix into shards, runs
 * each shard in a supervised runner subprocess, and survives any
 * single-component failure -- a crashed, hung, OOM-killed or
 * straggling shard -- without losing, duplicating or delaying a
 * result. This is the PR 8 supervision toolkit lifted one level up
 * (per-shard heartbeats, failure classification, deterministic
 * backoff, retry budget) plus checkpoint-based work stealing with
 * ownership-epoch fencing.
 *
 * Shard protocol (length-prefixed JSON frames, common/subprocess):
 *
 *   runner -> coordinator
 *     {"type":"heartbeat","seq":N,"progress":P,"queue":Q}
 *     {"type":"job-start","index":I,"epoch":E}
 *     {"type":"checkpoint-written","index":I,"epoch":E,
 *      "path":"...","cycle":C}
 *     {"type":"job-result","index":I,"epoch":E, ...result fields}
 *     {"type":"shard-idle"}
 *   coordinator -> runner (stdin)
 *     {"type":"shard-spec", ...}        exec mode only, first frame
 *     {"type":"assign","jobs":[{"index":I,"epoch":E,"resume":"..."}]}
 *     {"type":"revoke","jobs":[I, ...]}
 *     {"type":"shutdown"}
 *
 * Ownership epochs: every job carries an epoch (starting at 1) naming
 * which assignment of the job is current. Stealing or re-sharding a
 * job bumps its epoch, so a zombie runner that later reports the old
 * assignment is detected by the stale epoch and its result is fenced
 * out (discarded, counted in stats), never double-counted. The same
 * epoch is recorded in journal entries, where compactEntries() gives
 * the highest epoch the win.
 *
 * Work stealing: a shard whose progress counter has not advanced for
 * stealStallSec while another runner is alive loses all its
 * unfinalized jobs (including the in-flight one -- the victim is left
 * running and fenced, not killed); a shard whose progress *rate*
 * falls below stealFraction of the median rate loses its unstarted
 * jobs. Stolen jobs resume from their latest checkpoint-written
 * frame, so work done on the straggler is not repeated; an unusable
 * checkpoint degrades to a from-scratch run with byte-identical
 * results.
 */

#ifndef CAWA_SIM_COORDINATOR_HH
#define CAWA_SIM_COORDINATOR_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/subprocess.hh"
#include "sim/journal.hh"
#include "sim/supervisor.hh"
#include "sim/sweep.hh"

namespace cawa
{

/** One job handed to a shard runner: which matrix entry, under which
 *  ownership epoch, and the checkpoint to resume from (may be ""). */
struct ShardAssignment
{
    std::size_t index = 0;
    int epoch = 1;
    std::string resume;
};

/** Deterministic initial split: job i goes to shard i % shards. */
std::vector<std::vector<std::size_t>> shardSplit(std::size_t numJobs,
                                                 int shards);

/** Runner-side knobs, shipped in the shard-spec frame in exec mode. */
struct ShardRunnerOptions
{
    double heartbeatIntervalSec = 0.25;
    int jobMaxAttempts = 1; ///< in-runner runSweepJob attempts per job
    int shard = -1;         ///< slot id, echoed into journal entries
    /** Shard journal path ("" = no runner-side journaling). Append
     *  failures are swallowed: the coordinator's master journal is
     *  authoritative; the shard journal is merge input. */
    std::string journalPath;
};

/**
 * Runner-side chaos for tests and cawa_fuzz --shard-chaos. All hooks
 * keep the heartbeat thread alive, so they exercise the straggler /
 * steal / fencing paths rather than the hang detector.
 */
struct ShardRunnerChaos
{
    /** After N results, stall this long before the next job. */
    int stallAfterResults = -1;
    double stallSec = 0.0;
    /** Hold the (N+1)-th result this long before sending it (the
     *  zombie scenario: the job gets stolen mid-hold and the held
     *  result arrives with a stale epoch). A shutdown frame releases
     *  the hold early so the fenced frame is still observed. */
    int holdAfterResults = -1;
    double holdResultSec = 0.0;
    /** _exit(exitCode) right after sending N results (a mid-sweep
     *  crash with work left on the queue). */
    int exitAfterResults = -1;
    int exitCode = 11;
    /** Sleep before every job: a slow-but-alive shard. */
    double slowPerJobSec = 0.0;
};

/**
 * Worker-side entry: process assignments against @p matrix, streaming
 * shard-protocol frames to @p outFd and obeying assign/revoke/
 * shutdown control frames on @p inFd. SIGTERM/SIGINT cancel the
 * in-flight job cooperatively. Returns the runner exit code.
 *
 * Used by the fork-mode child directly and by the hidden
 * `cawa_sweep --shard-worker` exec entrypoint.
 */
int runShardRunner(const std::vector<SweepJob> &matrix,
                   const std::vector<ShardAssignment> &initial,
                   int inFd, int outFd, const ShardRunnerOptions &opt,
                   const ShardRunnerChaos &chaos = {});

/**
 * Coordinator-side chaos action for tests and the chaos fuzzer:
 * deliver a signal to a shard once the coordinator has finalized
 * @p afterResults results from it (0 = at spawn). Kill feeds the
 * crash/respawn path; Stop starves the heartbeat and feeds the
 * hung -> SIGTERM -> SIGKILL escalation (SIGCONT after contAfterSec
 * when >= 0).
 */
struct CoordinatorChaosAction
{
    enum class Kind { Kill, Stop };
    int shard = 0;
    int afterResults = 0;
    Kind kind = Kind::Kill;
    int signo = 9; ///< SIGKILL; any fatal signal works for Kill
    double contAfterSec = -1.0;
};

struct CoordinatorOptions
{
    /** Shard runner processes; clamped to [1, jobs]. */
    int shards = 2;

    /** Runner heartbeat cadence (seconds, real time). */
    double heartbeatIntervalSec = 0.25;
    /** A runner silent for this many consecutive intervals is
     *  declared hung and killed. Any frame counts as liveness. */
    int heartbeatMissLimit = 20;
    /** SIGTERM -> SIGKILL escalation delay (seconds). */
    double gracePeriodSec = 2.0;

    /** Respawns allowed per shard slot after a crash/oom/hang; past
     *  the cap the slot's jobs are re-sharded onto healthy runners
     *  (or finalized as failed when none remain). */
    int maxRespawnsPerShard = 2;
    /** Sweep-wide respawn cap shared by all shards; -1 = unlimited. */
    int retryBudget = -1;

    /** Deterministic backoff between respawns of one slot. */
    BackoffPolicy backoff;

    /** In-runner runSweepJob attempts (the sweep --retries knob). */
    int jobMaxAttempts = 1;

    /**
     * Straggler policy. A shard stalls when its progress counter has
     * not advanced for stealStallSec (heartbeats alone are not
     * progress); all its unfinalized jobs are stolen. A shard whose
     * progress rate over rateWindowSec falls below stealFraction of
     * the median rate (two or more measurable shards) loses its
     * unstarted jobs. <= 0 disables the respective rule.
     */
    double stealStallSec = 1.0;
    double stealFraction = 0.25;
    double rateWindowSec = 1.0;

    /** setrlimit caps applied in each runner. */
    ChildLimits limits;

    /** Cooperative shutdown: running shards get shutdown + SIGTERM,
     *  unfinalized jobs are finalized as cancelled. */
    const std::atomic<bool> *cancelFlag = nullptr;

    /**
     * Master journal (already open, owned by the caller). One entry
     * per finalized job, carrying the winning epoch and shard.
     * Nullptr = no journaling.
     */
    JournalWriter *journal = nullptr;
    /** Shard journal base path: runner k appends to
     *  shardJournalPath(journalBasePath, k). "" = none. */
    std::string journalBasePath;

    /** Conventional checkpoint directory (<dir>/<name>.ckpt) used as
     *  the resume fallback when no checkpoint-written frame has been
     *  seen for a stolen job. */
    std::string checkpointDir;

    /**
     * Exec mode: when workerArgv0 is non-empty the coordinator
     * fork/execs `workerArgv0 --shard-worker` per shard and ships
     * shardSpec(slot, initial) as the first frame on the runner's
     * stdin. When empty (the default) the runner is a plain fork that
     * inherits the job closures.
     */
    std::string workerArgv0;
    std::function<std::string(int slot,
                              const std::vector<ShardAssignment> &)>
        shardSpec;

    /** Fork-mode chaos hook: per-(slot, spawn) runner chaos. */
    std::function<ShardRunnerChaos(int slot, int spawn)> runnerChaos;
    /** Coordinator-side chaos schedule (signals at result counts). */
    std::vector<CoordinatorChaosAction> chaos;

    /**
     * Observer for coordination events: "spawn", "crashed", "oom",
     * "hung", "walltime", "respawn", "steal-stall", "steal-rate",
     * "reshard", "fenced", "result", "cancelled". shard is the slot
     * (or the victim for steals), detail the classification or job.
     */
    std::function<void(int shard, const std::string &event,
                       const std::string &detail)>
        onEvent;
};

/** Counters a finished run() leaves behind for tests and summaries. */
struct CoordinatorStats
{
    int respawns = 0;    ///< shard processes respawned after failure
    int stallSteals = 0; ///< steal events from the stall rule
    int rateSteals = 0;  ///< steal events from the rate rule
    int stolenJobs = 0;  ///< job reassignments from steals/re-shards
    int fenced = 0;      ///< stale-epoch frames discarded
};

/**
 * Runs a sweep matrix across shard runner subprocesses and returns
 * results in submission order, byte-identical to an in-process
 * SweepEngine run of the same matrix (tests/test_coordinator.cc
 * proves identity under SIGKILL, stall-steal and zombie chaos).
 */
class ShardCoordinator
{
  public:
    explicit ShardCoordinator(CoordinatorOptions opt);

    /**
     * Run every job and return results indexed like @p jobs.
     * @p on_done fires as jobs finalize, exactly once per job -- a
     * result fenced by a stale epoch is never surfaced.
     */
    std::vector<SweepResult> run(std::vector<SweepJob> jobs,
                                 const SweepEngine::JobDone &on_done =
                                     nullptr);

    const CoordinatorOptions &options() const { return opt_; }
    /** Counters from the most recent run(). */
    const CoordinatorStats &stats() const { return stats_; }

  private:
    CoordinatorOptions opt_;
    CoordinatorStats stats_;
};

} // namespace cawa

#endif // CAWA_SIM_COORDINATOR_HH
