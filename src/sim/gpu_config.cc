#include "sim/gpu_config.hh"

#include <cerrno>
#include <cstdlib>
#include <sstream>

#include "common/serialize.hh"
#include "common/sim_error.hh"

namespace cawa
{

namespace
{

WorkerFaultHandler g_workerFaultHandler = nullptr;

} // namespace

void
setWorkerFaultHandler(WorkerFaultHandler handler)
{
    g_workerFaultHandler = handler;
}

WorkerFaultHandler
workerFaultHandler()
{
    return g_workerFaultHandler;
}

int
simThreadsFromEnv(int fallback)
{
    const char *v = std::getenv("CAWA_SIM_THREADS");
    if (!v || !*v)
        return fallback;
    char *end = nullptr;
    errno = 0;
    const long parsed = std::strtol(v, &end, 10);
    if (end == v || *end != '\0' || errno == ERANGE || parsed < 1 ||
        parsed > 256)
        throw SimError(SimErrorKind::Config,
                       std::string("CAWA_SIM_THREADS='") + v +
                           "': want an integer in [1, 256]");
    return static_cast<int>(parsed);
}

std::uint32_t
configSignature(const GpuConfig &cfg, bool withOracle)
{
    OutArchive a;
    a.putU32(static_cast<std::uint32_t>(cfg.numSms));
    a.putU32(static_cast<std::uint32_t>(cfg.maxWarpsPerSm));
    a.putU32(static_cast<std::uint32_t>(cfg.maxBlocksPerSm));
    a.putU32(static_cast<std::uint32_t>(cfg.numSchedulersPerSm));
    a.putU32(static_cast<std::uint32_t>(cfg.warpSize));
    a.putU32(static_cast<std::uint32_t>(cfg.regFileSize));
    a.putU32(static_cast<std::uint32_t>(cfg.sharedMemBytes));
    a.putU64(cfg.aluLatency);
    a.putU64(cfg.sfuLatency);
    a.putU64(cfg.sharedMemLatency);
    a.putU32(static_cast<std::uint32_t>(cfg.l1d.sets));
    a.putU32(static_cast<std::uint32_t>(cfg.l1d.ways));
    a.putU32(static_cast<std::uint32_t>(cfg.l1d.lineBytes));
    a.putU64(cfg.l1d.hitLatency);
    a.putU32(static_cast<std::uint32_t>(cfg.l1d.numMshrs));
    a.putU32(static_cast<std::uint32_t>(cfg.l1d.mshrTargets));
    a.putU32(static_cast<std::uint32_t>(cfg.l1PortsPerCycle));
    a.putU32(static_cast<std::uint32_t>(cfg.ldstQueueSize));
    a.putU32(static_cast<std::uint32_t>(cfg.l2.banks));
    a.putU32(static_cast<std::uint32_t>(cfg.l2.setsPerBank));
    a.putU32(static_cast<std::uint32_t>(cfg.l2.ways));
    a.putU32(static_cast<std::uint32_t>(cfg.l2.lineBytes));
    a.putU64(cfg.l2.latency);
    a.putU32(static_cast<std::uint32_t>(cfg.l2.mshrsPerBank));
    a.putU64(cfg.icntLatency);
    a.putU32(static_cast<std::uint32_t>(cfg.icntWidth));
    a.putU64(cfg.dramLatency);
    a.putU32(static_cast<std::uint32_t>(cfg.dramServiceInterval));
    a.putU8(static_cast<std::uint8_t>(cfg.scheduler));
    a.putU8(static_cast<std::uint8_t>(cfg.l1Policy));
    a.putU32(static_cast<std::uint32_t>(cfg.cacp.criticalWays));
    a.putU32(static_cast<std::uint32_t>(cfg.cacp.tableEntries));
    a.putU32(static_cast<std::uint32_t>(cfg.cacp.ccbpThreshold));
    a.putU32(static_cast<std::uint32_t>(cfg.cacp.ccbpInitial));
    a.putU32(static_cast<std::uint32_t>(cfg.cacp.regionShift));
    a.putBool(cfg.cacp.dynamicPartition);
    a.putU64(cfg.cacp.adaptEpochFills);
    a.putU32(static_cast<std::uint32_t>(cfg.cacp.minWays));
    a.putDouble(cfg.criticalFraction);
    a.putU32(static_cast<std::uint32_t>(cfg.cplQuantShift));
    a.putBool(cfg.cplUseInstTerm);
    a.putBool(cfg.cplUseStallTerm);
    a.putU64(cfg.cplSampleInterval);
    a.putI64(cfg.traceBlockId);
    a.putU64(cfg.traceSampleInterval);
    a.putU64(cfg.maxCycles);
    a.putU64(cfg.watchdogInterval);
    // An oracle table changes scheduler behavior even under the same
    // GpuConfig; whether one is attached is part of the signature.
    a.putBool(withOracle);
    return crc32(a.data(), a.size());
}

std::string
cachePolicyKindName(CachePolicyKind kind)
{
    switch (kind) {
      case CachePolicyKind::Lru: return "lru";
      case CachePolicyKind::Srrip: return "srrip";
      case CachePolicyKind::Ship: return "ship";
      case CachePolicyKind::Cacp: return "cacp";
    }
    return "?";
}

namespace
{

bool
isPowerOfTwo(long v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

} // namespace

std::vector<std::string>
GpuConfig::validate() const
{
    std::vector<std::string> problems;
    auto bad = [&](std::string msg) { problems.push_back(std::move(msg)); };
    auto num = [](auto v) { return std::to_string(v); };

    if (numSms <= 0)
        bad("numSms=" + num(numSms) +
            ": need at least one SM to run a kernel");
    if (maxWarpsPerSm <= 0)
        bad("maxWarpsPerSm=" + num(maxWarpsPerSm) +
            ": every SM needs at least one warp slot");
    if (maxBlocksPerSm <= 0)
        bad("maxBlocksPerSm=" + num(maxBlocksPerSm) +
            ": every SM needs at least one block slot");
    if (numSchedulersPerSm <= 0)
        bad("numSchedulersPerSm=" + num(numSchedulersPerSm) +
            ": need at least one warp scheduler per SM");
    else if (maxWarpsPerSm > 0 && numSchedulersPerSm > maxWarpsPerSm)
        bad("numSchedulersPerSm=" + num(numSchedulersPerSm) +
            " exceeds maxWarpsPerSm=" + num(maxWarpsPerSm) +
            ": a scheduler needs at least one warp slot to serve");
    if (warpSize <= 0 || warpSize > 32)
        bad("warpSize=" + num(warpSize) +
            ": lane masks are 32-bit, need 1 <= warpSize <= 32");
    if (regFileSize <= 0)
        bad("regFileSize=" + num(regFileSize) +
            ": blocks bind registers at dispatch, need > 0");
    if (sharedMemBytes < 0)
        bad("sharedMemBytes=" + num(sharedMemBytes) + ": must be >= 0");

    if (aluLatency == 0 || sfuLatency == 0 || sharedMemLatency == 0)
        bad("aluLatency/sfuLatency/sharedMemLatency must be >= 1 "
            "(zero-latency writebacks would mature in the issue cycle)");

    if (l1d.sets <= 0 || l1d.ways <= 0)
        bad("l1d " + num(l1d.sets) + " sets x " + num(l1d.ways) +
            " ways: both must be > 0");
    if (!isPowerOfTwo(l1d.lineBytes))
        bad("l1d.lineBytes=" + num(l1d.lineBytes) +
            ": line size must be a power of two (address coalescing "
            "masks line offsets)");
    if (l1d.numMshrs <= 0 || l1d.mshrTargets <= 0)
        bad("l1d MSHRs " + num(l1d.numMshrs) + " x " +
            num(l1d.mshrTargets) +
            " targets: both must be > 0 or no miss can be tracked");
    if (l1PortsPerCycle <= 0)
        bad("l1PortsPerCycle=" + num(l1PortsPerCycle) +
            ": the LD/ST unit needs at least one L1 port");
    if (ldstQueueSize <= 0)
        bad("ldstQueueSize=" + num(ldstQueueSize) +
            ": global memory instructions need queue space to issue");

    if (l2.banks <= 0 || l2.setsPerBank <= 0 || l2.ways <= 0)
        bad("l2 " + num(l2.banks) + " banks x " + num(l2.setsPerBank) +
            " sets x " + num(l2.ways) + " ways: all must be > 0");
    if (!isPowerOfTwo(l2.lineBytes))
        bad("l2.lineBytes=" + num(l2.lineBytes) +
            ": line size must be a power of two");
    if (l2.mshrsPerBank <= 0)
        bad("l2.mshrsPerBank=" + num(l2.mshrsPerBank) + ": must be > 0");
    if (icntWidth <= 0)
        bad("icntWidth=" + num(icntWidth) +
            ": the interconnect must deliver at least one message per "
            "cycle per direction");
    if (dramServiceInterval <= 0)
        bad("dramServiceInterval=" + num(dramServiceInterval) +
            ": DRAM must accept a request at least every N >= 1 cycles");

    if (!(criticalFraction > 0.0) || criticalFraction > 1.0)
        bad("criticalFraction=" + num(criticalFraction) +
            ": the critical-warp fraction must be in (0, 1]");
    if (cplQuantShift < 0 || cplQuantShift > 62)
        bad("cplQuantShift=" + num(cplQuantShift) +
            ": priority bucket shift must be in [0, 62]");
    if (cacp.criticalWays < 0 || cacp.criticalWays > l1d.ways)
        bad("cacp.criticalWays=" + num(cacp.criticalWays) +
            " must fit the L1's " + num(l1d.ways) + " ways");
    if (cacp.tableEntries <= 0)
        bad("cacp.tableEntries=" + num(cacp.tableEntries) +
            ": CCBP/SHiP need a non-empty table");

    if (traceBlockId >= 0 && traceSampleInterval == 0)
        bad("traceSampleInterval=0 with traceBlockId=" +
            num(traceBlockId) + ": tracing needs a positive period");
    if (trace.enabled && trace.bufferCapacity == 0)
        bad("trace.bufferCapacity=0 with trace.enabled: the event "
            "ring needs room for at least one event");

    if (maxCycles == 0)
        bad("maxCycles=0: the safety valve would stop the run before "
            "the first cycle");
    if (checkLevel < 0 || checkLevel > 2)
        bad("checkLevel=" + num(checkLevel) +
            ": invariant audit level must be 0, 1 or 2");
    if (checkLevel > 0 && auditInterval == 0)
        bad("auditInterval=0 with checkLevel=" + num(checkLevel) +
            ": audits need a positive cadence");
    if (checkpointInterval > 0 && checkpointPath.empty())
        bad("checkpointInterval=" + num(checkpointInterval) +
            " with an empty checkpointPath: periodic checkpoints need "
            "a file to write to");
    if (wallClockLimitSec < 0.0)
        bad("wallClockLimitSec=" + num(wallClockLimitSec) +
            ": the wall-clock budget must be >= 0 (0 disables it)");
    if (simThreads < 1 || simThreads > 256)
        bad("simThreads=" + num(simThreads) +
            ": the parallel-SM worker count must be in [1, 256]");
    if (faults.workerKillSignal < 0 || faults.workerKillSignal > 64)
        bad("faults.workerKillSignal=" + num(faults.workerKillSignal) +
            ": must be a signal number in [0, 64] (0 disables)");
    if (faults.workerExitCode > 255)
        bad("faults.workerExitCode=" + num(faults.workerExitCode) +
            ": exit codes are 8-bit, want [-1, 255] (-1 disables)");
    if (faults.workerFaultCycle < 0)
        bad("faults.workerFaultCycle=" + num(faults.workerFaultCycle) +
            ": the fault cycle must be >= 0");
    if (faults.anyWorkerFault() && faults.workerFaultAttempts < 1)
        bad("faults.workerFaultAttempts=" +
            num(faults.workerFaultAttempts) +
            ": an armed worker fault must cover at least one attempt");
    return problems;
}

void
GpuConfig::validateOrThrow() const
{
    const std::vector<std::string> problems = validate();
    if (problems.empty())
        return;
    std::string msg = "invalid GpuConfig";
    for (const std::string &p : problems) {
        msg += "\n  - ";
        msg += p;
    }
    throw SimError(SimErrorKind::Config, msg);
}

std::string
GpuConfig::describe() const
{
    std::ostringstream oss;
    oss << "Architecture              modeled-after NVIDIA Fermi GTX480\n"
        << "Num. of SMs               " << numSms << "\n"
        << "Max. # of Warps per SM    " << maxWarpsPerSm << "\n"
        << "Max. # of Blocks per SM   " << maxBlocksPerSm << "\n"
        << "# of Schedulers per SM    " << numSchedulersPerSm << "\n"
        << "# of Registers per SM     " << regFileSize << "\n"
        << "Shared Memory             " << sharedMemBytes / 1024
        << "KB\n"
        << "L1 Data Cache             "
        << l1d.sets * l1d.ways * l1d.lineBytes / 1024 << "KB per SM ("
        << l1d.sets << "-sets/" << l1d.ways << "-ways/"
        << l1d.lineBytes << "B lines)\n"
        << "L2 Cache                  "
        << static_cast<long>(l2.banks) * l2.setsPerBank * l2.ways *
               l2.lineBytes / 1024
        << "KB unified (" << l2.setsPerBank << "-sets/" << l2.ways
        << "-ways/" << l2.banks << "-banks)\n"
        << "Min. L2 Access Latency    " << 2 * icntLatency + l2.latency
        << " cycles\n"
        << "Min. DRAM Access Latency  "
        << 2 * icntLatency + dramLatency + 1 << " cycles\n"
        << "Warp Size (SIMD Width)    " << warpSize << " threads\n"
        << "Warp Scheduler            " << schedulerKindName(scheduler)
        << "\n"
        << "L1D Policy                " << cachePolicyKindName(l1Policy)
        << "\n";
    if (l1Policy == CachePolicyKind::Cacp) {
        oss << "CACP critical ways        " << cacp.criticalWays << "/"
            << l1d.ways << "\n"
            << "CCBP/SHiP entries         " << cacp.tableEntries << "\n";
    }
    return oss.str();
}

} // namespace cawa
