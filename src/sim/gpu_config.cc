#include "sim/gpu_config.hh"

#include <sstream>

namespace cawa
{

std::string
cachePolicyKindName(CachePolicyKind kind)
{
    switch (kind) {
      case CachePolicyKind::Lru: return "lru";
      case CachePolicyKind::Srrip: return "srrip";
      case CachePolicyKind::Ship: return "ship";
      case CachePolicyKind::Cacp: return "cacp";
    }
    return "?";
}

std::string
GpuConfig::describe() const
{
    std::ostringstream oss;
    oss << "Architecture              modeled-after NVIDIA Fermi GTX480\n"
        << "Num. of SMs               " << numSms << "\n"
        << "Max. # of Warps per SM    " << maxWarpsPerSm << "\n"
        << "Max. # of Blocks per SM   " << maxBlocksPerSm << "\n"
        << "# of Schedulers per SM    " << numSchedulersPerSm << "\n"
        << "# of Registers per SM     " << regFileSize << "\n"
        << "Shared Memory             " << sharedMemBytes / 1024
        << "KB\n"
        << "L1 Data Cache             "
        << l1d.sets * l1d.ways * l1d.lineBytes / 1024 << "KB per SM ("
        << l1d.sets << "-sets/" << l1d.ways << "-ways/"
        << l1d.lineBytes << "B lines)\n"
        << "L2 Cache                  "
        << static_cast<long>(l2.banks) * l2.setsPerBank * l2.ways *
               l2.lineBytes / 1024
        << "KB unified (" << l2.setsPerBank << "-sets/" << l2.ways
        << "-ways/" << l2.banks << "-banks)\n"
        << "Min. L2 Access Latency    " << 2 * icntLatency + l2.latency
        << " cycles\n"
        << "Min. DRAM Access Latency  "
        << 2 * icntLatency + dramLatency + 1 << " cycles\n"
        << "Warp Size (SIMD Width)    " << warpSize << " threads\n"
        << "Warp Scheduler            " << schedulerKindName(scheduler)
        << "\n"
        << "L1D Policy                " << cachePolicyKindName(l1Policy)
        << "\n";
    if (l1Policy == CachePolicyKind::Cacp) {
        oss << "CACP critical ways        " << cacp.criticalWays << "/"
            << l1d.ways << "\n"
            << "CCBP/SHiP entries         " << cacp.tableEntries << "\n";
    }
    return oss.str();
}

} // namespace cawa
