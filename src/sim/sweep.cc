#include "sim/sweep.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <future>

#include "common/sim_assert.hh"
#include "common/thread_pool.hh"
#include "sim/gpu.hh"
#include "sim/oracle.hh"

namespace cawa
{

SweepResult
runSweepJob(const SweepJob &job)
{
    sim_assert(static_cast<bool>(job.build));
    SweepResult result;
    try {
        MemoryImage mem;
        const KernelInfo kernel = job.build(mem);
        if (job.cfg.scheduler == SchedulerKind::CawsOracle) {
            MemoryImage profile_mem;
            const auto &builder =
                job.buildProfile ? job.buildProfile : job.build;
            builder(profile_mem);
            result.report =
                runWithCawsOracle(job.cfg, mem, profile_mem, kernel);
        } else {
            result.report = runKernel(job.cfg, mem, kernel);
        }
        if (job.verify && !result.report.timedOut)
            result.verified = job.verify(mem);
    } catch (const std::exception &e) {
        result.error = e.what();
    } catch (...) {
        result.error = "unknown exception";
    }
    return result;
}

SweepEngine::SweepEngine(int threads)
    : threads_(threads > 0 ? threads : ThreadPool::defaultThreadCount())
{
}

std::vector<SweepResult>
SweepEngine::run(const std::vector<SweepJob> &jobs) const
{
    std::vector<SweepResult> results;
    const int workers =
        static_cast<int>(std::min<std::size_t>(threads_, jobs.size()));
    if (workers <= 1) {
        results.reserve(jobs.size());
        for (const auto &job : jobs)
            results.push_back(runSweepJob(job));
        return results;
    }

    ThreadPool pool(workers);
    std::vector<std::future<SweepResult>> pending;
    pending.reserve(jobs.size());
    for (const auto &job : jobs)
        pending.push_back(pool.submit([&job] { return runSweepJob(job); }));
    results.reserve(jobs.size());
    for (auto &f : pending)
        results.push_back(f.get());
    return results;
}

int
sweepThreadsFromEnv()
{
    const char *text = std::getenv("CAWA_BENCH_THREADS");
    if (!text || !*text)
        return 0;
    char *end = nullptr;
    errno = 0;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE || value < 1 ||
        value > 4096) {
        std::fprintf(stderr,
                     "warning: ignoring invalid CAWA_BENCH_THREADS '%s' "
                     "(want an integer in [1, 4096])\n",
                     text);
        return 0;
    }
    return static_cast<int>(value);
}

} // namespace cawa
