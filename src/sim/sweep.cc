#include "sim/sweep.hh"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <future>
#include <mutex>

#include "common/sim_assert.hh"
#include "common/sim_error.hh"
#include "common/thread_pool.hh"
#include "sim/gpu.hh"
#include "sim/oracle.hh"

namespace cawa
{

namespace
{

/** One crash-isolated execution of @p job. */
SweepResult
runSweepJobOnce(const SweepJob &job)
{
    sim_assert(static_cast<bool>(job.build));
    // Contain sim_assert failures to this job: any assertion firing
    // inside the simulator throws SimError here instead of aborting
    // the whole sweep process.
    SimAssertThrowGuard throw_guard(true);
    SweepResult result;
    try {
        // Surface configuration problems as one readable error before
        // any simulation state exists.
        job.cfg.validateOrThrow();
        MemoryImage mem;
        KernelInfo kernel = job.build(mem);

        // One execution, optionally continued from a checkpoint.
        // resumed is set only after a successful restore.
        auto execute = [&](const std::string &resume,
                           bool &resumed) -> SimReport {
            if (job.cfg.scheduler == SchedulerKind::CawsOracle) {
                MemoryImage profile_mem;
                const auto &builder =
                    job.buildProfile ? job.buildProfile : job.build;
                builder(profile_mem);
                return runWithCawsOracle(job.cfg, mem, profile_mem,
                                         kernel, resume, &resumed);
            }
            Gpu gpu(job.cfg, mem);
            if (!resume.empty()) {
                gpu.restoreCheckpoint(resume, kernel);
                resumed = true;
            } else {
                gpu.launch(kernel);
            }
            gpu.runToCompletion();
            return gpu.finish();
        };

        bool resumed = false;
        if (!job.resumeFromCheckpoint.empty()) {
            try {
                result.report =
                    execute(job.resumeFromCheckpoint, resumed);
            } catch (const SimError &e) {
                if (e.kind() != SimErrorKind::Checkpoint)
                    throw;
                // The checkpoint was unusable (corrupt, truncated,
                // stale configuration). A failed restore may have
                // overwritten parts of the memory image, so rebuild
                // the inputs and run from scratch.
                resumed = false;
                mem = MemoryImage{};
                kernel = job.build(mem);
                result.report = execute(std::string(), resumed);
            }
        } else {
            result.report = execute(std::string(), resumed);
        }
        result.resumed = resumed;
        if (job.verify &&
            result.report.exitStatus == ExitStatus::Completed)
            result.verified = job.verify(mem);
    } catch (const SimError &e) {
        result.error = e.what();
        if (e.kind() == SimErrorKind::Invariant)
            result.report.exitStatus = ExitStatus::Invariant;
        // Budget exhaustion and cooperative shutdown are first-class
        // outcomes the harness reports by name (and never retries).
        if (e.kind() == SimErrorKind::Walltime ||
            e.kind() == SimErrorKind::Cancelled)
            result.failureReason = simErrorKindName(e.kind());
    } catch (const std::exception &e) {
        result.error = e.what();
    } catch (...) {
        result.error = "unknown exception";
    }
    clearSimAssertContext();
    return result;
}

} // namespace

SweepResult
runSweepJob(const SweepJob &job, int max_attempts)
{
    max_attempts = std::max(max_attempts, 1);
    SweepResult result;
    for (int attempt = 1; attempt <= max_attempts; ++attempt) {
        result = runSweepJobOnce(job);
        result.attempts = attempt;
        // Only a thrown error is worth retrying; timeout, deadlock
        // and verification failures are deterministic outcomes, and
        // walltime/cancelled would just burn the same budget again.
        if (result.error.empty() || !result.failureReason.empty())
            break;
    }
    return result;
}

SweepEngine::SweepEngine(int threads)
    : threads_(threads > 0 ? threads : ThreadPool::defaultThreadCount())
{
}

std::vector<SweepResult>
SweepEngine::run(const std::vector<SweepJob> &jobs,
                 const JobDone &on_done, int max_attempts) const
{
    std::vector<SweepResult> results;
    const int workers =
        static_cast<int>(std::min<std::size_t>(threads_, jobs.size()));
    if (workers <= 1) {
        results.reserve(jobs.size());
        for (std::size_t i = 0; i < jobs.size(); ++i) {
            results.push_back(runSweepJob(jobs[i], max_attempts));
            if (on_done)
                on_done(i, results.back());
        }
        return results;
    }

    ThreadPool pool(workers);
    std::mutex done_mutex;
    std::vector<std::future<SweepResult>> pending;
    pending.reserve(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const SweepJob &job = jobs[i];
        pending.push_back(pool.submit([&job, &on_done, &done_mutex, i,
                                       max_attempts] {
            SweepResult result = runSweepJob(job, max_attempts);
            if (on_done) {
                std::lock_guard<std::mutex> lock(done_mutex);
                on_done(i, result);
            }
            return result;
        }));
    }
    results.reserve(jobs.size());
    for (auto &f : pending)
        results.push_back(f.get());
    return results;
}

int
sweepThreadsFromEnv()
{
    const char *text = std::getenv("CAWA_BENCH_THREADS");
    if (!text || !*text)
        return 0;
    char *end = nullptr;
    errno = 0;
    const long value = std::strtol(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE || value < 1 ||
        value > 4096) {
        std::fprintf(stderr,
                     "warning: ignoring invalid CAWA_BENCH_THREADS '%s' "
                     "(want an integer in [1, 4096])\n",
                     text);
        return 0;
    }
    return static_cast<int>(value);
}

} // namespace cawa
