/**
 * @file
 * Sweep completion journal: one JSON line per finished job (JSONL),
 * appended as jobs complete so a killed sweep can be resumed. The
 * reader is deliberately tolerant of a truncated or corrupt tail --
 * exactly what a crash mid-append leaves behind -- so --resume can
 * always trust the intact prefix.
 */

#ifndef CAWA_SIM_JOURNAL_HH
#define CAWA_SIM_JOURNAL_HH

#include <string>
#include <vector>

#include "sim/sweep.hh"

namespace cawa
{

/** One completed job as recorded in the journal. */
struct JournalEntry
{
    std::string job;    ///< SweepJob::name
    std::string status; ///< "ok" or a failure class (see entryStatus)
    std::string error;  ///< first line of the error, when one was set
    int attempts = 1;

    bool ok() const { return status == "ok"; }
};

/**
 * Status string a result journals as: "ok", a first-class failure
 * reason ("walltime", "cancelled"), "error" (the job threw),
 * "verify-failed", or the non-completed exit status name ("timeout",
 * "deadlock", "invariant").
 */
std::string entryStatus(const SweepResult &result);

/** Build the journal entry for one finished job. */
JournalEntry makeJournalEntry(const std::string &job,
                              const SweepResult &result);

/** Serialize one entry as a single JSON line (no trailing newline). */
std::string journalLine(const JournalEntry &entry);

/**
 * Read a journal written by journalLine(), newest entry last. Lines
 * that fail to parse (a torn final append, editor damage) are skipped
 * with a warning on stderr rather than failing the whole resume; a
 * missing file reads as an empty journal. When the same job appears
 * several times the later entry wins.
 */
std::vector<JournalEntry> readJournal(const std::string &path);

/**
 * Jobs from @p jobs that still need to run given @p journal: every
 * job without an "ok" entry (failed jobs re-run; finished ones are
 * skipped). Order is preserved.
 */
std::vector<SweepJob> filterResumeJobs(
    const std::vector<SweepJob> &jobs,
    const std::vector<JournalEntry> &journal);

} // namespace cawa

#endif // CAWA_SIM_JOURNAL_HH
