/**
 * @file
 * Sweep completion journal: one JSON line per finished job (JSONL),
 * appended as jobs complete so a killed sweep can be resumed. The
 * reader is deliberately tolerant of a truncated or corrupt tail --
 * exactly what a crash mid-append leaves behind -- so --resume can
 * always trust the intact prefix.
 */

#ifndef CAWA_SIM_JOURNAL_HH
#define CAWA_SIM_JOURNAL_HH

#include <string>
#include <vector>

#include "sim/sweep.hh"

namespace cawa
{

/** One completed job as recorded in the journal. */
struct JournalEntry
{
    std::string job;    ///< SweepJob::name
    std::string status; ///< "ok" or a failure class (see entryStatus)
    std::string error;  ///< first line of the error, when one was set
    int attempts = 1;

    bool ok() const { return status == "ok"; }
};

/**
 * Status string a result journals as: "ok", a first-class failure
 * reason ("walltime", "cancelled", and -- from the process-isolated
 * supervisor -- "crashed", "oom", "hung"), "error" (the job threw),
 * "verify-failed", or the non-completed exit status name ("timeout",
 * "deadlock", "invariant").
 */
std::string entryStatus(const SweepResult &result);

/** Build the journal entry for one finished job. */
JournalEntry makeJournalEntry(const std::string &job,
                              const SweepResult &result);

/** Serialize one entry as a single JSON line (no trailing newline). */
std::string journalLine(const JournalEntry &entry);

/**
 * Read a journal written by journalLine(), newest entry last. Lines
 * that fail to parse (a torn final append, editor damage) are skipped
 * with a warning on stderr rather than failing the whole resume; a
 * missing file reads as an empty journal. When the same job appears
 * several times the later entry wins.
 */
std::vector<JournalEntry> readJournal(const std::string &path);

/**
 * Jobs from @p jobs that still need to run given @p journal: every
 * job without an "ok" entry (failed jobs re-run; finished ones are
 * skipped). Order is preserved.
 */
std::vector<SweepJob> filterResumeJobs(
    const std::vector<SweepJob> &jobs,
    const std::vector<JournalEntry> &journal);

/**
 * Collapse @p entries to one entry per job, the latest winning, in
 * the order each job last appeared. This is the rewrite --resume
 * performs so a journal does not grow one line per retry forever.
 */
std::vector<JournalEntry> compactEntries(
    const std::vector<JournalEntry> &entries);

/**
 * Attach existing checkpoint files to re-run jobs: for every job
 * whose cfg.checkpointPath (or, when unset, @p checkpointDir/
 * <name>.ckpt) exists and is readable, set resumeFromCheckpoint so
 * the run continues cycle-exactly instead of from cycle 0. Returns
 * how many jobs were attached. An unusable file is still safe: the
 * job falls back to a from-scratch run inside runSweepJob.
 */
std::size_t attachResumeCheckpoints(std::vector<SweepJob> &jobs,
                                    const std::string &checkpointDir);

/**
 * Owning journal appender with single-writer enforcement and
 * crash-safe durability:
 *
 *  - open() takes an advisory exclusive flock() on the file and
 *    fails fast (SimError, kind Journal) when another process holds
 *    it, so two cawa_sweep invocations pointed at one --journal can
 *    never interleave their appends;
 *  - a torn final line left by a crashed writer is terminated with a
 *    newline on open, so new records never merge into it;
 *  - append() writes line + newline and fsync()s, so an entry that
 *    was reported is on disk even if the process dies next cycle;
 *  - rewrite() replaces the whole journal via write-to-temp, fsync,
 *    atomic rename (then re-acquires the lock on the new file): a
 *    crash mid-rewrite leaves the old journal intact.
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter();
    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Open (creating if needed), lock and repair @p path. */
    void open(const std::string &path);
    bool isOpen() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

    void append(const JournalEntry &entry);
    void rewrite(const std::vector<JournalEntry> &entries);

    /** fsync + unlock + close; open() may be called again. */
    void close();

  private:
    std::string path_;
    int fd_ = -1;
};

} // namespace cawa

#endif // CAWA_SIM_JOURNAL_HH
