/**
 * @file
 * Sweep completion journal: one JSON line per finished job (JSONL),
 * appended as jobs complete so a killed sweep can be resumed. The
 * reader is deliberately tolerant of a truncated or corrupt tail --
 * exactly what a crash mid-append leaves behind -- so --resume can
 * always trust the intact prefix.
 */

#ifndef CAWA_SIM_JOURNAL_HH
#define CAWA_SIM_JOURNAL_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "sim/sweep.hh"

namespace cawa
{

/** One completed job as recorded in the journal. */
struct JournalEntry
{
    std::string job;    ///< SweepJob::name
    std::string status; ///< "ok" or a failure class (see entryStatus)
    std::string error;  ///< first line of the error, when one was set
    int attempts = 1;

    /**
     * Ownership-epoch fencing token for sharded sweeps: the epoch the
     * writing shard owned the job under. When a job is stolen its
     * epoch is bumped, so a zombie runner's late entry carries a
     * stale (lower) epoch and loses every merge. 0 = unsharded entry
     * (legacy journals), which any fenced entry outranks.
     */
    int epoch = 0;
    int shard = -1; ///< writing shard slot, -1 when unsharded

    bool ok() const { return status == "ok"; }
};

/**
 * Status string a result journals as: "ok", a first-class failure
 * reason ("walltime", "cancelled", and -- from the process-isolated
 * supervisor -- "crashed", "oom", "hung"), "error" (the job threw),
 * "verify-failed", or the non-completed exit status name ("timeout",
 * "deadlock", "invariant").
 */
std::string entryStatus(const SweepResult &result);

/** Build the journal entry for one finished job. */
JournalEntry makeJournalEntry(const std::string &job,
                              const SweepResult &result);

/** Serialize one entry as a single JSON line (no trailing newline). */
std::string journalLine(const JournalEntry &entry);

/**
 * Read a journal written by journalLine(), newest entry last. Lines
 * that fail to parse (a torn final append, editor damage) are skipped
 * with a warning on stderr rather than failing the whole resume; a
 * missing file reads as an empty journal. When the same job appears
 * several times the later entry wins.
 */
std::vector<JournalEntry> readJournal(const std::string &path);

/**
 * Jobs from @p jobs that still need to run given @p journal: every
 * job without an "ok" entry (failed jobs re-run; finished ones are
 * skipped). Order is preserved.
 */
std::vector<SweepJob> filterResumeJobs(
    const std::vector<SweepJob> &jobs,
    const std::vector<JournalEntry> &journal);

/**
 * Collapse @p entries to one entry per job: the highest ownership
 * epoch wins, ties broken by the later position, so a zombie shard's
 * stale append can never shadow the entry of the shard that stole
 * the job. Winners are ordered by last appearance, so the compacted
 * journal reads like the history it replaces (with all-zero epochs
 * this is exactly the pre-sharding latest-wins behaviour). This is
 * the rewrite --resume performs so a journal does not grow one line
 * per retry forever.
 */
std::vector<JournalEntry> compactEntries(
    const std::vector<JournalEntry> &entries);

/**
 * Merge several journals (master first, then per-shard journals in
 * slot order) into one compacted, fence-aware entry list. When
 * @p submissionOrder is non-null the winners are re-ordered to match
 * it (jobs missing from the list keep their merge order, after the
 * known ones), so the merged journal is deterministic in submission
 * order no matter which shard finished first.
 */
std::vector<JournalEntry> mergeJournals(
    const std::vector<std::vector<JournalEntry>> &journals,
    const std::vector<std::string> *submissionOrder = nullptr);

/** Path of shard @p slot's journal: "<masterPath>.shard<slot>". */
std::string shardJournalPath(const std::string &masterPath, int slot);

/**
 * Attach existing checkpoint files to re-run jobs: for every job
 * whose cfg.checkpointPath (or, when unset, @p checkpointDir/
 * <name>.ckpt) exists and is readable, set resumeFromCheckpoint so
 * the run continues cycle-exactly instead of from cycle 0. Returns
 * how many jobs were attached. An unusable file is still safe: the
 * job falls back to a from-scratch run inside runSweepJob.
 */
std::size_t attachResumeCheckpoints(std::vector<SweepJob> &jobs,
                                    const std::string &checkpointDir);

/**
 * As above, but @p preferred (job name -> checkpoint path, e.g. the
 * latest checkpoint-written frames a coordinator observed) overrides
 * the conventional <dir>/<name>.ckpt location when the preferred
 * file is readable. Used when stolen jobs are re-sharded onto a
 * healthy runner mid-sweep.
 */
std::size_t attachResumeCheckpoints(
    std::vector<SweepJob> &jobs, const std::string &checkpointDir,
    const std::unordered_map<std::string, std::string> &preferred);

/**
 * Owning journal appender with single-writer enforcement and
 * crash-safe durability:
 *
 *  - open() takes an advisory exclusive flock() on the file and
 *    fails fast (SimError, kind Journal) when another process holds
 *    it, so two cawa_sweep invocations pointed at one --journal can
 *    never interleave their appends;
 *  - a torn final line left by a crashed writer is terminated with a
 *    newline on open, so new records never merge into it;
 *  - append() writes line + newline and fsync()s, so an entry that
 *    was reported is on disk even if the process dies next cycle;
 *  - rewrite() replaces the whole journal via write-to-temp, fsync,
 *    atomic rename (then re-acquires the lock on the new file): a
 *    crash mid-rewrite leaves the old journal intact.
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter();
    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /** Open (creating if needed), lock and repair @p path. */
    void open(const std::string &path);
    bool isOpen() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

    void append(const JournalEntry &entry);

    /**
     * Append one raw JSONL record (no trailing newline in @p line)
     * with the same durability as append(): write + fsync. Lets other
     * journal-shaped logs -- the cawad job queue -- reuse the locked
     * single-writer machinery without being JournalEntry-shaped.
     */
    void appendLine(const std::string &line);

    void rewrite(const std::vector<JournalEntry> &entries);

    /** fsync + unlock + close; open() may be called again. */
    void close();

  private:
    std::string path_;
    int fd_ = -1;
};

} // namespace cawa

#endif // CAWA_SIM_JOURNAL_HH
