#include "sim/gpu.hh"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/sim_assert.hh"
#include "common/sim_error.hh"

namespace cawa
{

namespace
{

/** CAWA_FAST_FORWARD=0 force-disables cycle skipping for debugging. */
bool
fastForwardEnvEnabled()
{
    const char *v = std::getenv("CAWA_FAST_FORWARD");
    return !(v && v[0] == '0' && v[1] == '\0');
}

/** CAWA_CHECK=0/1/2 overrides GpuConfig::checkLevel. */
int
checkLevelFromEnv(int fallback)
{
    const char *v = std::getenv("CAWA_CHECK");
    if (v && v[0] >= '0' && v[0] <= '2' && v[1] == '\0')
        return v[0] - '0';
    return fallback;
}

} // namespace

Gpu::Gpu(const GpuConfig &cfg, MemoryImage &mem,
         const OracleTable *oracle)
    : cfg_(cfg), mem_(mem), oracle_(oracle),
      fastForward_(cfg.fastForward && fastForwardEnvEnabled()),
      checkLevel_(checkLevelFromEnv(cfg.checkLevel))
{
    cfg_.validateOrThrow();
}

void
Gpu::tick(Cycle now, std::vector<std::unique_ptr<SmCore>> &sms,
          Interconnect &icnt, L2Cache &l2, DramModel &dram,
          BlockDispatcher &dispatcher)
{
    dispatcher.dispatch(sms, now);

    // Only tick SMs whose next event is due; a skipped SM settles its
    // per-warp stall accounting for the gap when it next wakes.
    for (auto &sm : sms)
        if (!fastForward_ || sm->dueAt(now))
            sm->tick(now);

    // Miss/write-through traffic out of the L1s.
    for (auto &sm : sms)
        while (sm->hasOutgoing())
            icnt.pushToL2(sm->popOutgoing(), now);

    for (const MemMsg &msg : icnt.popToL2(now))
        l2.pushRequest(msg, now);

    l2.tick(now, dram);
    dram.tick(now);

    for (const MemMsg &msg : dram.popResponses(now))
        l2.handleDramResponse(msg, now);

    for (const MemMsg &msg : l2.popResponses(now))
        icnt.pushToSm(msg, now);

    for (const MemMsg &msg : icnt.popToSm(now)) {
        sim_assert(msg.smId >= 0 &&
                   msg.smId < static_cast<int>(sms.size()));
        sms[msg.smId]->fillResponse(msg.lineAddr, now);
    }
}

SimReport
Gpu::run(const KernelInfo &kernel)
{
    // Kernel-vs-config compatibility: report these as configuration
    // errors (the harness can contain them to one job), not asserts.
    if (const std::string defect = kernel.program.validate();
        !defect.empty())
        throw SimError(SimErrorKind::Config,
                       "kernel '" + kernel.name +
                           "' fails program validation: " + defect);
    if (kernel.warpsPerBlock(cfg_.warpSize) > cfg_.maxWarpsPerSm)
        throw SimError(SimErrorKind::Config,
                       "kernel '" + kernel.name + "' needs " +
                           std::to_string(
                               kernel.warpsPerBlock(cfg_.warpSize)) +
                           " warps per block but the SM has only " +
                           std::to_string(cfg_.maxWarpsPerSm) +
                           " warp slots: no block can ever dispatch");
    if (kernel.blockDim * kernel.regsPerThread > cfg_.regFileSize)
        throw SimError(SimErrorKind::Config,
                       "kernel '" + kernel.name + "' needs " +
                           std::to_string(kernel.blockDim *
                                          kernel.regsPerThread) +
                           " registers per block but the SM register "
                           "file holds " +
                           std::to_string(cfg_.regFileSize));
    if (kernel.smemPerBlock > cfg_.sharedMemBytes)
        throw SimError(SimErrorKind::Config,
                       "kernel '" + kernel.name + "' needs " +
                           std::to_string(kernel.smemPerBlock) +
                           " bytes of shared memory per block but the "
                           "SM has " +
                           std::to_string(cfg_.sharedMemBytes));

    std::vector<std::unique_ptr<SmCore>> sms;
    for (int i = 0; i < cfg_.numSms; ++i)
        sms.push_back(std::make_unique<SmCore>(cfg_, i, mem_, kernel,
                                               oracle_));
    Interconnect icnt(cfg_.icntLatency, cfg_.icntWidth);
    L2Cache l2(cfg_.l2);
    DramModel dram(cfg_.dramLatency, cfg_.dramServiceInterval);
    BlockDispatcher dispatcher(kernel.gridDim);

    SimReport report;
    report.kernelName = kernel.name;
    report.schedulerName = schedulerKindName(cfg_.scheduler);
    report.cachePolicyName = cachePolicyKindName(cfg_.l1Policy);

    const Cycle watchdog = cfg_.watchdogInterval;
    Cycle nextWatchdog = watchdog ? watchdog : kNoCycle;
    const Cycle auditEvery =
        checkLevel_ > 0 ? cfg_.auditInterval : 0;
    Cycle nextAudit = auditEvery ? auditEvery : kNoCycle;

    Cycle now = 0;
    for (;;) {
        tick(now, sms, icnt, l2, dram, dispatcher);
        now++;

        if (now >= cfg_.maxCycles) {
            report.timedOut = true;
            report.exitStatus = ExitStatus::Timeout;
            break;
        }
        if (dispatcher.allDispatched()) {
            bool busy = !icnt.idle() || !l2.idle() || !dram.idle();
            for (const auto &sm : sms)
                busy = busy || sm->busy();
            if (!busy)
                break;
        }
        // Periodic invariant audit (read-only; results stay
        // bit-identical at every level). now-1 is the cycle the tick
        // above just simulated.
        if (now >= nextAudit) {
            for (const auto &sm : sms)
                sm->audit(now - 1, checkLevel_);
            nextAudit = now + auditEvery;
        }
        // Deadlock watchdog: at each boundary run the provable-wedge
        // check and finish early with a classified diagnostic instead
        // of burning to maxCycles.
        if (now >= nextWatchdog) {
            if (wedged(sms, icnt, l2, dram, dispatcher)) {
                recordDeadlock(report, now, sms, dispatcher);
                break;
            }
            nextWatchdog = now + watchdog;
        }
        if (!fastForward_)
            continue;

        // Event horizon: when the earliest event of any component lies
        // beyond the next cycle, every tick until then would only
        // charge stalls -- jump straight there. The skipped span is
        // charged lazily by each SM when it next wakes, so every
        // counter lands exactly where flat ticking would put it.
        Cycle next = nextEventCycle(now, sms, icnt, l2, dram,
                                    dispatcher);
        // No component holds any event: either a wedge (report it
        // now) or, with the watchdog disabled, ride the clock to the
        // timeout like the flat-tick path would.
        if (next == kNoCycle && watchdog &&
            wedged(sms, icnt, l2, dram, dispatcher)) {
            recordDeadlock(report, now, sms, dispatcher);
            break;
        }
        next = std::min(next, static_cast<Cycle>(cfg_.maxCycles));
        if (next > now) {
            now = next;
            if (now >= cfg_.maxCycles) {
                report.timedOut = true;
                report.exitStatus = ExitStatus::Timeout;
                break;
            }
        }
    }

    // Settle stall accounting for SMs whose final idle stretch was
    // never re-ticked (e.g. timed-out runs).
    for (auto &sm : sms)
        sm->finalizeStallAccounting(now);

    report.cycles = now;
    for (auto &sm : sms) {
        report.instructions += sm->issuedInstructions();
        report.l1.merge(sm->l1Stats());
        for (auto &rec : sm->takeRetiredBlocks())
            report.blocks.push_back(std::move(rec));
        for (const auto &sample : sm->traceSamples())
            report.trace.push_back(sample);
    }
    report.l2 = l2.stats();
    report.dramReads = dram.reads;
    report.dramWrites = dram.writes;
    report.icntMessages = icnt.messagesToL2 + icnt.messagesToSm;
    return report;
}

Cycle
Gpu::nextEventCycle(Cycle now,
                    const std::vector<std::unique_ptr<SmCore>> &sms,
                    const Interconnect &icnt, const L2Cache &l2,
                    const DramModel &dram,
                    const BlockDispatcher &dispatcher) const
{
    Cycle next = icnt.nextEventCycle(now);
    if (next <= now)
        return now;
    next = std::min(next, l2.nextEventCycle(now));
    next = std::min(next, dram.nextEventCycle(now));
    next = std::min(next, dispatcher.nextEventCycle(sms, now));
    for (const auto &sm : sms) {
        if (next <= now)
            return now;
        next = std::min(next, sm->nextEventCycle());
    }
    return next;
}

bool
Gpu::wedged(const std::vector<std::unique_ptr<SmCore>> &sms,
            const Interconnect &icnt, const L2Cache &l2,
            const DramModel &dram,
            const BlockDispatcher &dispatcher) const
{
    // Any in-flight memory traffic will eventually reach an SM and
    // wake it; any quiescent-SM scan below would be stale.
    if (!icnt.idle() || !l2.idle() || !dram.idle())
        return false;
    for (const auto &sm : sms)
        if (!sm->quiescent())
            return false;
    // An undispatched block that fits somewhere is a future event.
    if (!dispatcher.allDispatched()) {
        for (const auto &sm : sms)
            if (sm->canAcceptBlock())
                return false;
        return true; // blocks remain but can never place: wedged
    }
    // All dispatched, machine fully quiet: wedged iff work remains
    // (otherwise the normal completion check would have ended the
    // run before the watchdog looked).
    for (const auto &sm : sms)
        if (sm->busy())
            return true;
    return false;
}

void
Gpu::recordDeadlock(SimReport &report, Cycle now,
                    const std::vector<std::unique_ptr<SmCore>> &sms,
                    const BlockDispatcher &dispatcher) const
{
    SmCore::StuckSummary total;
    for (const auto &sm : sms) {
        const SmCore::StuckSummary s = sm->stuckSummary();
        total.activeWarps += s.activeWarps;
        total.atBarrier += s.atBarrier;
        total.finishedWaiting += s.finishedWaiting;
        total.withOutstandingLoads += s.withOutstandingLoads;
        total.l1Mshrs += s.l1Mshrs;
        total.ldstQueued += s.ldstQueued;
        total.liveTokens += s.liveTokens;
    }

    // Classify by what the machine is visibly waiting on. Order
    // matters: a lost fill also leaves live tokens, so check the
    // MSHR side first; a pure token leak leaves the L1 idle.
    const char *kind;
    if (total.atBarrier > 0 && total.atBarrier == total.activeWarps) {
        kind = "barrier deadlock: every stuck warp waits at a barrier "
               "that can never release (an arrival was lost)";
    } else if (total.l1Mshrs > 0) {
        kind = "lost L1 fill: MSHR entries outstanding with the "
               "memory system idle (a fill response was lost)";
    } else if (total.liveTokens > 0) {
        kind = "LD/ST token leak: live load tokens with no pending "
               "completion (a load completion was lost)";
    } else if (!dispatcher.allDispatched()) {
        kind = "dispatch starvation: undispatched blocks fit no SM "
               "and no resident block can retire";
    } else {
        kind = "no-progress livelock: active warps exist but none "
               "can ever issue";
    }

    std::string dump = "deadlock detected at cycle ";
    dump += std::to_string(now);
    dump += ": ";
    dump += kind;
    dump += "\n";
    dump += "machine: activeWarps=" + std::to_string(total.activeWarps) +
            " atBarrier=" + std::to_string(total.atBarrier) +
            " finishedWaiting=" + std::to_string(total.finishedWaiting) +
            " withOutstandingLoads=" +
            std::to_string(total.withOutstandingLoads) +
            " l1Mshrs=" + std::to_string(total.l1Mshrs) +
            " liveTokens=" + std::to_string(total.liveTokens) +
            " undispatchedBlocks=" +
            (dispatcher.allDispatched() ? "0" : "yes") + "\n";
    for (const auto &sm : sms) {
        // Only stuck SMs are interesting; idle ones add noise.
        if (sm->busy())
            sm->appendDeadlockDump(dump, now);
    }

    report.exitStatus = ExitStatus::Deadlock;
    report.diagnostic = std::move(dump);
}

SimReport
runKernel(const GpuConfig &cfg, MemoryImage &mem,
          const KernelInfo &kernel, const OracleTable *oracle)
{
    Gpu gpu(cfg, mem, oracle);
    return gpu.run(kernel);
}

} // namespace cawa
