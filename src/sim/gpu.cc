#include "sim/gpu.hh"

#include <algorithm>
#include <cstdlib>

#include "common/sim_assert.hh"

namespace cawa
{

namespace
{

/** CAWA_FAST_FORWARD=0 force-disables cycle skipping for debugging. */
bool
fastForwardEnvEnabled()
{
    const char *v = std::getenv("CAWA_FAST_FORWARD");
    return !(v && v[0] == '0' && v[1] == '\0');
}

} // namespace

Gpu::Gpu(const GpuConfig &cfg, MemoryImage &mem,
         const OracleTable *oracle)
    : cfg_(cfg), mem_(mem), oracle_(oracle),
      fastForward_(cfg.fastForward && fastForwardEnvEnabled())
{
    sim_assert(cfg.numSms > 0);
}

void
Gpu::tick(Cycle now, std::vector<std::unique_ptr<SmCore>> &sms,
          Interconnect &icnt, L2Cache &l2, DramModel &dram,
          BlockDispatcher &dispatcher)
{
    dispatcher.dispatch(sms, now);

    // Only tick SMs whose next event is due; a skipped SM settles its
    // per-warp stall accounting for the gap when it next wakes.
    for (auto &sm : sms)
        if (!fastForward_ || sm->dueAt(now))
            sm->tick(now);

    // Miss/write-through traffic out of the L1s.
    for (auto &sm : sms)
        while (sm->hasOutgoing())
            icnt.pushToL2(sm->popOutgoing(), now);

    for (const MemMsg &msg : icnt.popToL2(now))
        l2.pushRequest(msg, now);

    l2.tick(now, dram);
    dram.tick(now);

    for (const MemMsg &msg : dram.popResponses(now))
        l2.handleDramResponse(msg, now);

    for (const MemMsg &msg : l2.popResponses(now))
        icnt.pushToSm(msg, now);

    for (const MemMsg &msg : icnt.popToSm(now)) {
        sim_assert(msg.smId >= 0 &&
                   msg.smId < static_cast<int>(sms.size()));
        sms[msg.smId]->fillResponse(msg.lineAddr, now);
    }
}

SimReport
Gpu::run(const KernelInfo &kernel)
{
    sim_assert(kernel.program.validate().empty());
    sim_assert(kernel.warpsPerBlock(cfg_.warpSize) <= cfg_.maxWarpsPerSm);
    sim_assert(kernel.blockDim * kernel.regsPerThread <=
               cfg_.regFileSize);
    sim_assert(kernel.smemPerBlock <= cfg_.sharedMemBytes);

    std::vector<std::unique_ptr<SmCore>> sms;
    for (int i = 0; i < cfg_.numSms; ++i)
        sms.push_back(std::make_unique<SmCore>(cfg_, i, mem_, kernel,
                                               oracle_));
    Interconnect icnt(cfg_.icntLatency, cfg_.icntWidth);
    L2Cache l2(cfg_.l2);
    DramModel dram(cfg_.dramLatency, cfg_.dramServiceInterval);
    BlockDispatcher dispatcher(kernel.gridDim);

    SimReport report;
    report.kernelName = kernel.name;
    report.schedulerName = schedulerKindName(cfg_.scheduler);
    report.cachePolicyName = cachePolicyKindName(cfg_.l1Policy);

    Cycle now = 0;
    for (;;) {
        tick(now, sms, icnt, l2, dram, dispatcher);
        now++;

        if (now >= cfg_.maxCycles) {
            report.timedOut = true;
            break;
        }
        if (dispatcher.allDispatched()) {
            bool busy = !icnt.idle() || !l2.idle() || !dram.idle();
            for (const auto &sm : sms)
                busy = busy || sm->busy();
            if (!busy)
                break;
        }
        if (!fastForward_)
            continue;

        // Event horizon: when the earliest event of any component lies
        // beyond the next cycle, every tick until then would only
        // charge stalls -- jump straight there. The skipped span is
        // charged lazily by each SM when it next wakes, so every
        // counter lands exactly where flat ticking would put it. A
        // wedged machine (no event ever) runs straight into the
        // timeout.
        Cycle next = nextEventCycle(now, sms, icnt, l2, dram,
                                    dispatcher);
        next = std::min(next, static_cast<Cycle>(cfg_.maxCycles));
        if (next > now) {
            now = next;
            if (now >= cfg_.maxCycles) {
                report.timedOut = true;
                break;
            }
        }
    }

    // Settle stall accounting for SMs whose final idle stretch was
    // never re-ticked (e.g. timed-out runs).
    for (auto &sm : sms)
        sm->finalizeStallAccounting(now);

    report.cycles = now;
    for (auto &sm : sms) {
        report.instructions += sm->issuedInstructions();
        report.l1.merge(sm->l1Stats());
        for (auto &rec : sm->takeRetiredBlocks())
            report.blocks.push_back(std::move(rec));
        for (const auto &sample : sm->traceSamples())
            report.trace.push_back(sample);
    }
    report.l2 = l2.stats();
    report.dramReads = dram.reads;
    report.dramWrites = dram.writes;
    report.icntMessages = icnt.messagesToL2 + icnt.messagesToSm;
    return report;
}

Cycle
Gpu::nextEventCycle(Cycle now,
                    const std::vector<std::unique_ptr<SmCore>> &sms,
                    const Interconnect &icnt, const L2Cache &l2,
                    const DramModel &dram,
                    const BlockDispatcher &dispatcher) const
{
    Cycle next = icnt.nextEventCycle(now);
    if (next <= now)
        return now;
    next = std::min(next, l2.nextEventCycle(now));
    next = std::min(next, dram.nextEventCycle(now));
    next = std::min(next, dispatcher.nextEventCycle(sms, now));
    for (const auto &sm : sms) {
        if (next <= now)
            return now;
        next = std::min(next, sm->nextEventCycle());
    }
    return next;
}

SimReport
runKernel(const GpuConfig &cfg, MemoryImage &mem,
          const KernelInfo &kernel, const OracleTable *oracle)
{
    Gpu gpu(cfg, mem, oracle);
    return gpu.run(kernel);
}

} // namespace cawa
