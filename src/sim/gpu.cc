#include "sim/gpu.hh"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "common/sim_assert.hh"
#include "common/sim_error.hh"
#include "common/thread_pool.hh"
#include "sim/checkpoint.hh"

namespace cawa
{

namespace
{

/** CAWA_FAST_FORWARD=0 force-disables cycle skipping for debugging. */
bool
fastForwardEnvEnabled()
{
    const char *v = std::getenv("CAWA_FAST_FORWARD");
    return !(v && v[0] == '0' && v[1] == '\0');
}

/** CAWA_CHECK=0/1/2 overrides GpuConfig::checkLevel. */
int
checkLevelFromEnv(int fallback)
{
    const char *v = std::getenv("CAWA_CHECK");
    if (v && v[0] >= '0' && v[0] <= '2' && v[1] == '\0')
        return v[0] - '0';
    return fallback;
}

/**
 * Cycles per stepUntil() chunk when run() must poll for wall-clock
 * overrun, cancellation or a checkpoint boundary. Large enough that
 * the steady_clock read is free relative to the simulated work.
 */
constexpr Cycle kInterruptStride = 65536;

} // namespace

/**
 * Everything that exists only between launch() and finish(). Holding
 * it behind a unique_ptr lets one Gpu run (or restore) several
 * kernels sequentially and keeps the checkpoint surface explicit:
 * saveCheckpoint() serializes exactly this struct plus the memory
 * image.
 */
struct Gpu::Machine
{
    const KernelInfo &kernel;
    std::vector<std::unique_ptr<SmCore>> sms;
    Interconnect icnt;
    L2Cache l2;
    DramModel dram;
    BlockDispatcher dispatcher;
    SimReport report;
    Cycle now = 0;
    Cycle nextWatchdog = kNoCycle;
    Cycle nextAudit = kNoCycle;
    bool done = false;

    Machine(const GpuConfig &cfg, const KernelInfo &k, MemoryImage &mem,
            const OracleTable *oracle, int check_level)
        : kernel(k), icnt(cfg.icntLatency, cfg.icntWidth), l2(cfg.l2),
          dram(cfg.dramLatency, cfg.dramServiceInterval),
          dispatcher(k.gridDim)
    {
        for (int i = 0; i < cfg.numSms; ++i)
            sms.push_back(
                std::make_unique<SmCore>(cfg, i, mem, k, oracle));
        report.kernelName = k.name;
        report.schedulerName = schedulerKindName(cfg.scheduler);
        report.cachePolicyName = cachePolicyKindName(cfg.l1Policy);
        if (cfg.watchdogInterval)
            nextWatchdog = cfg.watchdogInterval;
        if (check_level > 0 && cfg.auditInterval)
            nextAudit = cfg.auditInterval;
    }
};

Gpu::Gpu(const GpuConfig &cfg, MemoryImage &mem,
         const OracleTable *oracle)
    : cfg_(cfg), mem_(mem), oracle_(oracle),
      fastForward_(cfg.fastForward && fastForwardEnvEnabled()),
      checkLevel_(checkLevelFromEnv(cfg.checkLevel)),
      simThreads_(simThreadsFromEnv(cfg.simThreads))
{
    cfg_.validateOrThrow();
}

Gpu::~Gpu() = default;

void
Gpu::tick(Machine &m)
{
    const Cycle now = m.now;
    m.dispatcher.dispatch(m.sms, now);

    // Only tick SMs whose next event is due; a skipped SM settles its
    // per-warp stall accounting for the gap when it next wakes.
    if (pool_) {
        // Phase 1: tick the SMs concurrently. A ticking SM touches
        // only its own state — global-memory stores are buffered in
        // its MemPort and trace events go to its private ring — so
        // the workers share nothing mutable and the partition below
        // (worker w owns SMs w, w+T, w+2T, ...) is only a
        // load-balancing choice, never an ordering one.
        const int team = pool_->threads();
        const int num_sms = static_cast<int>(m.sms.size());
        // The sim_assert throw-mode flag is thread-local (the sweep
        // engine sets it per job thread); hand the caller's mode to
        // every worker for the duration of the tick.
        const bool throw_mode = simAssertThrows();
        pool_->run([&, throw_mode](int worker) {
            const SimAssertThrowGuard guard(throw_mode);
            for (int i = worker; i < num_sms; i += team)
                if (!fastForward_ || m.sms[i]->dueAt(now))
                    m.sms[i]->tick(now);
        });
        // Phase 2a: apply the buffered stores serially in SM order —
        // the exact order the serial loop's in-place writes happen,
        // so the memory image is identical at every cycle boundary.
        for (auto &sm : m.sms)
            sm->commitStores();
    } else {
        for (auto &sm : m.sms)
            if (!fastForward_ || sm->dueAt(now))
                sm->tick(now);
    }

    // Phase 2b: miss/write-through traffic out of the L1s, drained
    // serially in fixed SM order so icnt/L2/DRAM arbitration — and
    // therefore every report byte — is independent of simThreads.
    // (faults.reverseSmDrainOrder flips the order to let the tests
    // prove this ordering is actually load-bearing.)
    std::chrono::steady_clock::time_point mem_start;
    if (cfg_.profilePhases)
        mem_start = std::chrono::steady_clock::now();
    if (cfg_.faults.reverseSmDrainOrder) {
        for (auto it = m.sms.rbegin(); it != m.sms.rend(); ++it)
            while ((*it)->hasOutgoing())
                m.icnt.pushToL2((*it)->popOutgoing(), now);
    } else {
        for (auto &sm : m.sms)
            while (sm->hasOutgoing())
                m.icnt.pushToL2(sm->popOutgoing(), now);
    }

    for (const MemMsg &msg : m.icnt.popToL2(now))
        m.l2.pushRequest(msg, now);

    m.l2.tick(now, m.dram);
    m.dram.tick(now);

    for (const MemMsg &msg : m.dram.popResponses(now))
        m.l2.handleDramResponse(msg, now);

    for (const MemMsg &msg : m.l2.popResponses(now))
        m.icnt.pushToSm(msg, now);

    for (const MemMsg &msg : m.icnt.popToSm(now)) {
        sim_assert(msg.smId >= 0 &&
                   msg.smId < static_cast<int>(m.sms.size()));
        m.sms[msg.smId]->fillResponse(msg.lineAddr, now);
    }

    if (cfg_.profilePhases)
        memPhaseSeconds_ += std::chrono::duration<double>(
            std::chrono::steady_clock::now() - mem_start).count();
}

void
Gpu::launch(const KernelInfo &kernel)
{
    sim_assert(!machine_);
    wallStart_ = std::chrono::steady_clock::now();

    // Kernel-vs-config compatibility: report these as configuration
    // errors (the harness can contain them to one job), not asserts.
    if (const std::string defect = kernel.program.validate();
        !defect.empty())
        throw SimError(SimErrorKind::Config,
                       "kernel '" + kernel.name +
                           "' fails program validation: " + defect);
    if (kernel.warpsPerBlock(cfg_.warpSize) > cfg_.maxWarpsPerSm)
        throw SimError(SimErrorKind::Config,
                       "kernel '" + kernel.name + "' needs " +
                           std::to_string(
                               kernel.warpsPerBlock(cfg_.warpSize)) +
                           " warps per block but the SM has only " +
                           std::to_string(cfg_.maxWarpsPerSm) +
                           " warp slots: no block can ever dispatch");
    if (kernel.blockDim * kernel.regsPerThread > cfg_.regFileSize)
        throw SimError(SimErrorKind::Config,
                       "kernel '" + kernel.name + "' needs " +
                           std::to_string(kernel.blockDim *
                                          kernel.regsPerThread) +
                           " registers per block but the SM register "
                           "file holds " +
                           std::to_string(cfg_.regFileSize));
    if (kernel.smemPerBlock > cfg_.sharedMemBytes)
        throw SimError(SimErrorKind::Config,
                       "kernel '" + kernel.name + "' needs " +
                           std::to_string(kernel.smemPerBlock) +
                           " bytes of shared memory per block but the "
                           "SM has " +
                           std::to_string(cfg_.sharedMemBytes));

    machine_ = std::make_unique<Machine>(cfg_, kernel, mem_, oracle_,
                                         checkLevel_);

    // Parallel-SM mode: build the fork-join team once (it survives
    // re-launches) and switch every SM's MemPort to deferred stores
    // so phase 1 never writes the shared memory image.
    if (simThreads_ > 1 && !pool_)
        pool_ = std::make_unique<ForkJoin>(simThreads_);
    for (auto &sm : machine_->sms)
        sm->setDeferStores(pool_ != nullptr);

    // Tracing is a pure observer: the rings are rebuilt per launch
    // (restores get fresh, empty rings) and only ever receive copies
    // of values the machine computed anyway, so results are
    // bit-identical with the knob on or off. The TraceSet is used in
    // serial mode too: per-ring contents (and drops) are then
    // identical at every simThreads value, so exports are as well.
    traceSet_.reset();
    mergedTrace_.reset();
    if (cfg_.trace.enabled) {
        traceSet_ = std::make_unique<TraceSet>(
            cfg_.numSms, cfg_.trace.bufferCapacity);
        Machine &m = *machine_;
        for (std::size_t i = 0; i < m.sms.size(); ++i) {
            // Tick-side events go to the SM's own ring; fill-side L1
            // events happen during the serial drain and belong to the
            // shared memory-system ring.
            m.sms[i]->setTraceSink(
                traceSet_->smRing(static_cast<int>(i)));
            m.sms[i]->setFillTraceSink(traceSet_->memoryRing());
        }
        m.icnt.setTraceSink(traceSet_->memoryRing());
        m.l2.setTraceSink(traceSet_->memoryRing());
        m.dram.setTraceSink(traceSet_->memoryRing());
        m.dispatcher.setTraceSink(traceSet_->dispatchRing());
    }
}

TraceBuffer *
Gpu::traceBuffer() const
{
    if (!traceSet_)
        return nullptr;
    // recorded() counts every event ever offered (drops included), so
    // it is a cheap change stamp for the memoized merge.
    const std::uint64_t stamp = traceSet_->recorded();
    if (!mergedTrace_ || mergedStamp_ != stamp) {
        mergedTrace_ =
            std::make_unique<TraceBuffer>(traceSet_->merged());
        mergedStamp_ = stamp;
    }
    return mergedTrace_.get();
}

Cycle
Gpu::cycle() const
{
    sim_assert(machine_);
    return machine_->now;
}

bool
Gpu::stepUntil(Cycle stop)
{
    sim_assert(machine_);
    Machine &m = *machine_;
    if (m.done)
        return true;

    const Cycle watchdog = cfg_.watchdogInterval;
    const Cycle auditEvery = checkLevel_ > 0 ? cfg_.auditInterval : 0;

    for (;;) {
        if (m.now >= stop)
            return false;
        tick(m);
        m.now++;

        if (m.now >= cfg_.maxCycles) {
            m.report.timedOut = true;
            m.report.exitStatus = ExitStatus::Timeout;
            break;
        }
        if (m.dispatcher.allDispatched()) {
            bool busy = !m.icnt.idle() || !m.l2.idle() || !m.dram.idle();
            for (const auto &sm : m.sms)
                busy = busy || sm->busy();
            if (!busy)
                break;
        }
        // Periodic invariant audit (read-only; results stay
        // bit-identical at every level). now-1 is the cycle the tick
        // above just simulated.
        if (m.now >= m.nextAudit) {
            for (const auto &sm : m.sms)
                sm->audit(m.now - 1, checkLevel_);
            m.nextAudit = m.now + auditEvery;
        }
        // Deadlock watchdog: at each boundary run the provable-wedge
        // check and finish early with a classified diagnostic instead
        // of burning to maxCycles.
        if (m.now >= m.nextWatchdog) {
            if (wedged(m)) {
                recordDeadlock(m);
                break;
            }
            m.nextWatchdog = m.now + watchdog;
        }
        if (!fastForward_)
            continue;

        // Event horizon: when the earliest event of any component lies
        // beyond the next cycle, every tick until then would only
        // charge stalls -- jump straight there. The skipped span is
        // charged lazily by each SM when it next wakes, so every
        // counter lands exactly where flat ticking would put it.
        Cycle next = nextEventCycle(m);
        // No component holds any event: either a wedge (report it
        // now) or, with the watchdog disabled, ride the clock to the
        // timeout like the flat-tick path would.
        if (next == kNoCycle && watchdog && wedged(m)) {
            recordDeadlock(m);
            break;
        }
        // The jump never overshoots the caller's stop cycle, so
        // pauses (and therefore checkpoints) land exactly where
        // requested; stopping short of an event boundary is harmless
        // because a tick at an event-free cycle only charges stalls.
        next = std::min(next, static_cast<Cycle>(cfg_.maxCycles));
        next = std::min(next, stop);
        if (next > m.now) {
            m.now = next;
            if (m.now >= cfg_.maxCycles) {
                m.report.timedOut = true;
                m.report.exitStatus = ExitStatus::Timeout;
                break;
            }
        }
    }
    m.done = true;
    return true;
}

void
Gpu::checkInterrupts()
{
    sim_assert(machine_);
    // Process-level fault injection: only an isolated worker installs
    // a handler, so these knobs can never kill an in-process sweep.
    // The handler raises a signal, stalls heartbeats or _exit()s --
    // it does not return control when it fires.
    if (cfg_.faults.anyWorkerFault() && workerFaultHandler() &&
        machine_->now >=
            static_cast<Cycle>(cfg_.faults.workerFaultCycle))
        workerFaultHandler()(cfg_.faults);
    if (cfg_.cancelFlag &&
        cfg_.cancelFlag->load(std::memory_order_relaxed)) {
        std::string msg =
            "run cancelled at cycle " + std::to_string(machine_->now);
        if (!cfg_.checkpointPath.empty()) {
            saveCheckpoint(cfg_.checkpointPath);
            msg += "; state saved to '" + cfg_.checkpointPath + "'";
        }
        throw SimError(SimErrorKind::Cancelled, msg);
    }
    if (cfg_.wallClockLimitSec > 0.0) {
        const double elapsed =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - wallStart_)
                .count();
        if (elapsed >= cfg_.wallClockLimitSec) {
            std::string msg =
                "wall-clock limit of " +
                std::to_string(cfg_.wallClockLimitSec) +
                "s exceeded at cycle " + std::to_string(machine_->now);
            if (!cfg_.checkpointPath.empty()) {
                saveCheckpoint(cfg_.checkpointPath);
                msg += "; state saved to '" + cfg_.checkpointPath + "'";
            }
            throw SimError(SimErrorKind::Walltime, msg);
        }
    }
}

void
Gpu::runToCompletion()
{
    sim_assert(machine_);
    // An armed worker fault (with a handler installed, i.e. inside an
    // isolated worker) must fire at its exact cycle even when the job
    // would otherwise finish inside one uninterrupted chunk.
    const bool worker_fault =
        cfg_.faults.anyWorkerFault() && workerFaultHandler() != nullptr;
    const bool interruptible = cfg_.checkpointInterval > 0 ||
                               cfg_.wallClockLimitSec > 0.0 ||
                               cfg_.cancelFlag != nullptr ||
                               worker_fault;
    if (!interruptible) {
        stepUntil(kNoCycle);
        return;
    }

    Cycle nextCkpt = cfg_.checkpointInterval
        ? machine_->now + cfg_.checkpointInterval : kNoCycle;
    for (;;) {
        // Checked at entry too, so a pre-set cancel flag or an
        // already-blown wall clock never starts a chunk.
        checkInterrupts();
        Cycle stop = std::min(nextCkpt, machine_->now + kInterruptStride);
        if (worker_fault &&
            machine_->now <
                static_cast<Cycle>(cfg_.faults.workerFaultCycle))
            stop = std::min(
                stop, static_cast<Cycle>(cfg_.faults.workerFaultCycle));
        if (stepUntil(stop))
            return;
        if (machine_->now >= nextCkpt) {
            saveCheckpoint(cfg_.checkpointPath);
            nextCkpt = machine_->now + cfg_.checkpointInterval;
        }
    }
}

SimReport
Gpu::finish()
{
    sim_assert(machine_);
    Machine &m = *machine_;

    // Settle stall accounting for SMs whose final idle stretch was
    // never re-ticked (e.g. timed-out runs).
    for (auto &sm : m.sms)
        sm->finalizeStallAccounting(m.now);

    m.report.cycles = m.now;
    for (auto &sm : m.sms) {
        m.report.instructions += sm->issuedInstructions();
        m.report.l1.merge(sm->l1Stats());
        for (auto &rec : sm->takeRetiredBlocks())
            m.report.blocks.push_back(std::move(rec));
        for (const auto &sample : sm->traceSamples())
            m.report.trace.push_back(sample);
    }
    m.report.l2 = m.l2.stats();
    m.report.dramReads = m.dram.reads;
    m.report.dramWrites = m.dram.writes;
    m.report.icntMessages = m.icnt.messagesToL2 + m.icnt.messagesToSm;

    if (cfg_.profilePhases) {
        for (const auto &sm : m.sms) {
            const SmCore::PhaseSeconds &p = sm->phaseSeconds();
            m.report.phaseSchedSeconds += p.sched;
            m.report.phaseL1Seconds += p.l1;
            m.report.phaseAccountSeconds += p.account;
            m.report.phaseCplSeconds += p.cpl;
        }
        m.report.phaseMemSeconds = memPhaseSeconds_;
    }

    // Populate the unified stats registry (the "stats" object of
    // cawa-simreport-v3). Registration order is the serialization
    // order, so keep it fixed: sim totals, schedulers, CPL, caches,
    // DRAM, interconnect, dispatcher. Every counter that phase 1 can
    // touch is a per-SM member folded here (and above) on a single
    // thread in SM order, so neither totals nor registration order
    // ever depend on the parallel-tick interleaving.
    StatsRegistry &reg = m.report.stats;
    reg.counter("sim.cycles", m.report.cycles);
    reg.counter("sim.instructions", m.report.instructions);
    reg.counter("sim.blocksRetired", m.report.blocks.size());
    for (int k = 0; k < cfg_.numSchedulersPerSm; ++k) {
        std::uint64_t issues = 0;
        for (const auto &sm : m.sms)
            issues += sm->schedIssues()[k];
        reg.counter("sched." + std::to_string(k) + ".issues", issues);
    }
    std::uint64_t cpl_issue = 0, cpl_branch = 0, cpl_barrier = 0;
    for (const auto &sm : m.sms) {
        cpl_issue += sm->cpl().issueUpdates();
        cpl_branch += sm->cpl().branchUpdates();
        cpl_barrier += sm->cpl().barrierReleases();
    }
    reg.counter("cpl.issueUpdates", cpl_issue);
    reg.counter("cpl.branchUpdates", cpl_branch);
    reg.counter("cpl.barrierReleases", cpl_barrier);
    m.report.l1.registerStats(reg, "l1");
    m.report.l2.registerStats(reg, "l2");
    reg.counter("dram.reads", m.report.dramReads);
    reg.counter("dram.writes", m.report.dramWrites);
    reg.counter("icnt.messagesToL2", m.icnt.messagesToL2);
    reg.counter("icnt.messagesToSm", m.icnt.messagesToSm);
    reg.counter("dispatcher.dispatchedBlocks", m.dispatcher.nextBlock());

    SimReport report = std::move(m.report);
    machine_.reset();
    return report;
}

SimReport
Gpu::run(const KernelInfo &kernel)
{
    launch(kernel);
    runToCompletion();
    return finish();
}

std::uint32_t
Gpu::configSignature() const
{
    return cawa::configSignature(cfg_, oracle_ != nullptr);
}

void
Gpu::saveCheckpoint(const std::string &path)
{
    sim_assert(machine_);
    Machine &m = *machine_;

    // Checkpoints happen at cycle boundaries, where every deferred
    // store has been committed (phase 2 runs inside tick), so the
    // store logs never need serializing -- which is also why a
    // parallel-mode checkpoint restores cleanly into a serial run
    // and vice versa (simThreads is excluded from configSignature()).
    for (const auto &sm : m.sms)
        sim_assert(sm->pendingDeferredStores() == 0);

    CheckpointWriter w;
    {
        OutArchive meta;
        meta.putU32(configSignature());
        meta.putString(m.kernel.name);
        meta.putU32(crc32(m.kernel.program.disassemble()));
        meta.putU32(static_cast<std::uint32_t>(m.kernel.gridDim));
        meta.putU32(static_cast<std::uint32_t>(m.kernel.blockDim));
        meta.putU32(static_cast<std::uint32_t>(m.kernel.regsPerThread));
        meta.putU32(static_cast<std::uint32_t>(m.kernel.smemPerBlock));
        meta.putU64(m.now);
        meta.putU64(m.nextWatchdog);
        meta.putU64(m.nextAudit);
        meta.putBool(m.done);
        w.add("meta", meta);
    }
    {
        OutArchive a;
        mem_.save(a);
        w.add("memory", a);
    }
    {
        OutArchive a;
        m.dispatcher.save(a);
        w.add("dispatcher", a);
    }
    {
        OutArchive a;
        m.icnt.save(a);
        w.add("icnt", a);
    }
    {
        OutArchive a;
        m.l2.save(a);
        w.add("l2", a);
    }
    {
        OutArchive a;
        m.dram.save(a);
        w.add("dram", a);
    }
    for (std::size_t i = 0; i < m.sms.size(); ++i) {
        OutArchive a;
        m.sms[i]->save(a);
        w.add("sm" + std::to_string(i), a);
    }

    // One-shot fault-injection hook: corrupt the next written file,
    // then disarm so a retry after the detected failure writes clean.
    const std::int64_t corrupt = cfg_.faults.corruptCheckpointByte;
    cfg_.faults.corruptCheckpointByte = -1;
    writeCheckpointFile(path, w.finish(), corrupt);

    // Progress observer (the isolated sweep worker streams a
    // `checkpoint-written` frame from here); runs only after the
    // atomic rename has landed, so the reported path is usable.
    if (cfg_.checkpointWrittenHook)
        cfg_.checkpointWrittenHook(path, m.now);
}

void
Gpu::restoreCheckpoint(const std::string &path,
                       const KernelInfo &kernel)
{
    const std::vector<std::uint8_t> image = readCheckpointFile(path);
    const CheckpointReader reader(image);

    // Verify the metadata (configuration signature, kernel identity
    // and geometry) before building any machine state.
    InArchive meta = reader.open("meta");
    const std::uint32_t cfg_sig = meta.getU32();
    if (cfg_sig != configSignature())
        throw SimError(SimErrorKind::Checkpoint,
                       "checkpoint '" + path +
                           "' was written under a different GpuConfig "
                           "(signature " + std::to_string(cfg_sig) +
                           ", this run has " +
                           std::to_string(configSignature()) +
                           "): refusing to restore");
    const std::string kname = meta.getString();
    const std::uint32_t phash = meta.getU32();
    if (kname != kernel.name ||
        phash != crc32(kernel.program.disassemble()))
        throw SimError(SimErrorKind::Checkpoint,
                       "checkpoint '" + path + "' is for kernel '" +
                           kname + "', not '" + kernel.name +
                           "' (or the program text differs): "
                           "refusing to restore");
    const auto grid = static_cast<int>(meta.getU32());
    const auto block = static_cast<int>(meta.getU32());
    const auto regs = static_cast<int>(meta.getU32());
    const auto smem = static_cast<int>(meta.getU32());
    if (grid != kernel.gridDim || block != kernel.blockDim ||
        regs != kernel.regsPerThread || smem != kernel.smemPerBlock)
        throw SimError(SimErrorKind::Checkpoint,
                       "checkpoint '" + path +
                           "' was written for a different launch "
                           "geometry of kernel '" + kname +
                           "': refusing to restore");
    const Cycle now = meta.getU64();
    const Cycle next_watchdog = meta.getU64();
    const Cycle next_audit = meta.getU64();
    const bool done = meta.getBool();
    meta.expectEnd();

    machine_.reset();
    launch(kernel);
    try {
        Machine &m = *machine_;
        {
            InArchive a = reader.open("memory");
            mem_.load(a);
            a.expectEnd();
        }
        {
            InArchive a = reader.open("dispatcher");
            m.dispatcher.load(a);
            a.expectEnd();
        }
        {
            InArchive a = reader.open("icnt");
            m.icnt.load(a);
            a.expectEnd();
        }
        {
            InArchive a = reader.open("l2");
            m.l2.load(a);
            a.expectEnd();
        }
        {
            InArchive a = reader.open("dram");
            m.dram.load(a);
            a.expectEnd();
        }
        for (std::size_t i = 0; i < m.sms.size(); ++i) {
            InArchive a = reader.open("sm" + std::to_string(i));
            m.sms[i]->load(a); // runs its own expectEnd()
        }
        m.now = now;
        m.nextWatchdog = next_watchdog;
        m.nextAudit = next_audit;
        m.done = done;

        // A checkpoint that decodes cleanly can still encode a state
        // the machine could never reach (a bug, not corruption -- the
        // CRCs passed). The full invariant audit catches that here,
        // at the restore boundary, instead of as divergence a million
        // cycles later.
        for (const auto &sm : m.sms)
            sm->audit(m.now ? m.now - 1 : 0, 2);
    } catch (...) {
        // Never leave a half-loaded machine behind: the caller must
        // be able to fall back to a fresh launch.
        machine_.reset();
        throw;
    }
}

Cycle
Gpu::nextEventCycle(const Machine &m) const
{
    const Cycle now = m.now;
    Cycle next = m.icnt.nextEventCycle(now);
    if (next <= now)
        return now;
    next = std::min(next, m.l2.nextEventCycle(now));
    next = std::min(next, m.dram.nextEventCycle(now));
    next = std::min(next, m.dispatcher.nextEventCycle(m.sms, now));
    for (const auto &sm : m.sms) {
        if (next <= now)
            return now;
        next = std::min(next, sm->nextEventCycle());
    }
    return next;
}

bool
Gpu::wedged(const Machine &m) const
{
    // Any in-flight memory traffic will eventually reach an SM and
    // wake it; any quiescent-SM scan below would be stale.
    if (!m.icnt.idle() || !m.l2.idle() || !m.dram.idle())
        return false;
    for (const auto &sm : m.sms)
        if (!sm->quiescent())
            return false;
    // An undispatched block that fits somewhere is a future event.
    if (!m.dispatcher.allDispatched()) {
        for (const auto &sm : m.sms)
            if (sm->canAcceptBlock())
                return false;
        return true; // blocks remain but can never place: wedged
    }
    // All dispatched, machine fully quiet: wedged iff work remains
    // (otherwise the normal completion check would have ended the
    // run before the watchdog looked).
    for (const auto &sm : m.sms)
        if (sm->busy())
            return true;
    return false;
}

void
Gpu::recordDeadlock(Machine &m) const
{
    SmCore::StuckSummary total;
    for (const auto &sm : m.sms) {
        const SmCore::StuckSummary s = sm->stuckSummary();
        total.activeWarps += s.activeWarps;
        total.atBarrier += s.atBarrier;
        total.finishedWaiting += s.finishedWaiting;
        total.withOutstandingLoads += s.withOutstandingLoads;
        total.l1Mshrs += s.l1Mshrs;
        total.ldstQueued += s.ldstQueued;
        total.liveTokens += s.liveTokens;
    }

    // Classify by what the machine is visibly waiting on. Order
    // matters: a lost fill also leaves live tokens, so check the
    // MSHR side first; a pure token leak leaves the L1 idle.
    const char *kind;
    if (total.atBarrier > 0 && total.atBarrier == total.activeWarps) {
        kind = "barrier deadlock: every stuck warp waits at a barrier "
               "that can never release (an arrival was lost)";
    } else if (total.l1Mshrs > 0) {
        kind = "lost L1 fill: MSHR entries outstanding with the "
               "memory system idle (a fill response was lost)";
    } else if (total.liveTokens > 0) {
        kind = "LD/ST token leak: live load tokens with no pending "
               "completion (a load completion was lost)";
    } else if (!m.dispatcher.allDispatched()) {
        kind = "dispatch starvation: undispatched blocks fit no SM "
               "and no resident block can retire";
    } else {
        kind = "no-progress livelock: active warps exist but none "
               "can ever issue";
    }

    std::string dump = "deadlock detected at cycle ";
    dump += std::to_string(m.now);
    dump += ": ";
    dump += kind;
    dump += "\n";
    dump += "machine: activeWarps=" + std::to_string(total.activeWarps) +
            " atBarrier=" + std::to_string(total.atBarrier) +
            " finishedWaiting=" + std::to_string(total.finishedWaiting) +
            " withOutstandingLoads=" +
            std::to_string(total.withOutstandingLoads) +
            " l1Mshrs=" + std::to_string(total.l1Mshrs) +
            " liveTokens=" + std::to_string(total.liveTokens) +
            " undispatchedBlocks=" +
            (m.dispatcher.allDispatched() ? "0" : "yes") + "\n";
    for (const auto &sm : m.sms) {
        // Only stuck SMs are interesting; idle ones add noise.
        if (sm->busy())
            sm->appendDeadlockDump(dump, m.now);
    }

    m.report.exitStatus = ExitStatus::Deadlock;
    m.report.diagnostic = std::move(dump);
}

SimReport
runKernel(const GpuConfig &cfg, MemoryImage &mem,
          const KernelInfo &kernel, const OracleTable *oracle)
{
    Gpu gpu(cfg, mem, oracle);
    return gpu.run(kernel);
}

} // namespace cawa
