#include "sim/gpu.hh"

#include "common/sim_assert.hh"

namespace cawa
{

Gpu::Gpu(const GpuConfig &cfg, MemoryImage &mem,
         const OracleTable *oracle)
    : cfg_(cfg), mem_(mem), oracle_(oracle)
{
    sim_assert(cfg.numSms > 0);
}

void
Gpu::tick(Cycle now, std::vector<std::unique_ptr<SmCore>> &sms,
          Interconnect &icnt, L2Cache &l2, DramModel &dram,
          BlockDispatcher &dispatcher)
{
    dispatcher.dispatch(sms, now);

    for (auto &sm : sms)
        sm->tick(now);

    // Miss/write-through traffic out of the L1s.
    for (auto &sm : sms)
        while (sm->hasOutgoing())
            icnt.pushToL2(sm->popOutgoing(), now);

    for (const MemMsg &msg : icnt.popToL2(now))
        l2.pushRequest(msg, now);

    l2.tick(now, dram);
    dram.tick(now);

    for (const MemMsg &msg : dram.popResponses(now))
        l2.handleDramResponse(msg, now);

    for (const MemMsg &msg : l2.popResponses(now))
        icnt.pushToSm(msg, now);

    for (const MemMsg &msg : icnt.popToSm(now)) {
        sim_assert(msg.smId >= 0 &&
                   msg.smId < static_cast<int>(sms.size()));
        sms[msg.smId]->fillResponse(msg.lineAddr, now);
    }
}

SimReport
Gpu::run(const KernelInfo &kernel)
{
    sim_assert(kernel.program.validate().empty());
    sim_assert(kernel.warpsPerBlock(cfg_.warpSize) <= cfg_.maxWarpsPerSm);
    sim_assert(kernel.blockDim * kernel.regsPerThread <=
               cfg_.regFileSize);
    sim_assert(kernel.smemPerBlock <= cfg_.sharedMemBytes);

    std::vector<std::unique_ptr<SmCore>> sms;
    for (int i = 0; i < cfg_.numSms; ++i)
        sms.push_back(std::make_unique<SmCore>(cfg_, i, mem_, kernel,
                                               oracle_));
    Interconnect icnt(cfg_.icntLatency, cfg_.icntWidth);
    L2Cache l2(cfg_.l2);
    DramModel dram(cfg_.dramLatency, cfg_.dramServiceInterval);
    BlockDispatcher dispatcher(kernel.gridDim);

    SimReport report;
    report.kernelName = kernel.name;
    report.schedulerName = schedulerKindName(cfg_.scheduler);
    report.cachePolicyName = cachePolicyKindName(cfg_.l1Policy);

    Cycle now = 0;
    for (;;) {
        tick(now, sms, icnt, l2, dram, dispatcher);
        now++;

        if (now >= cfg_.maxCycles) {
            report.timedOut = true;
            break;
        }
        if (!dispatcher.allDispatched())
            continue;
        bool busy = !icnt.idle() || !l2.idle() || !dram.idle();
        for (const auto &sm : sms)
            busy = busy || sm->busy();
        if (!busy)
            break;
    }

    report.cycles = now;
    for (auto &sm : sms) {
        report.instructions += sm->issuedInstructions();
        report.l1.merge(sm->l1Stats());
        for (auto &rec : sm->takeRetiredBlocks())
            report.blocks.push_back(std::move(rec));
        for (const auto &sample : sm->traceSamples())
            report.trace.push_back(sample);
    }
    report.l2 = l2.stats();
    report.dramReads = dram.reads;
    report.dramWrites = dram.writes;
    report.icntMessages = icnt.messagesToL2 + icnt.messagesToSm;
    return report;
}

SimReport
runKernel(const GpuConfig &cfg, MemoryImage &mem,
          const KernelInfo &kernel, const OracleTable *oracle)
{
    Gpu gpu(cfg, mem, oracle);
    return gpu.run(kernel);
}

} // namespace cawa
