#include "sim/functional.hh"

#include <array>
#include <vector>

#include "common/sim_assert.hh"

namespace cawa
{

namespace
{

struct ThreadState
{
    std::uint32_t pc = 0;
    std::array<RegValue, kNumRegs> regs{};
    std::array<bool, kNumPredRegs> preds{};
    bool done = false;
    bool atBarrier = false;
    std::uint64_t steps = 0;
};

/** Execute one instruction for one thread; returns false at a bar. */
void
step(ThreadState &t, const KernelInfo &kernel, int block, int tid,
     MemoryImage &mem, std::vector<std::uint8_t> &shared)
{
    const Instruction &inst = kernel.program.at(t.pc);
    t.steps++;
    switch (inst.op) {
      case Opcode::Nop:
        t.pc++;
        break;
      case Opcode::Setp:
        t.preds[inst.pdst] =
            evalCmp(inst.cmp, t.regs[inst.src0], t.regs[inst.src1]);
        t.pc++;
        break;
      case Opcode::SetpImm:
        t.preds[inst.pdst] = evalCmp(inst.cmp, t.regs[inst.src0],
                                     static_cast<RegValue>(inst.imm));
        t.pc++;
        break;
      case Opcode::Selp:
        t.regs[inst.dst] = t.preds[inst.psrc] ? t.regs[inst.src0]
                                              : t.regs[inst.src1];
        t.pc++;
        break;
      case Opcode::S2R: {
        const auto sreg = static_cast<SpecialReg>(inst.imm);
        RegValue v = 0;
        switch (sreg) {
          case SpecialReg::TidX: v = tid; break;
          case SpecialReg::CtaIdX: v = block; break;
          case SpecialReg::NTidX: v = kernel.blockDim; break;
          case SpecialReg::NCtaIdX: v = kernel.gridDim; break;
          case SpecialReg::LaneId: v = tid % 32; break;
          case SpecialReg::WarpIdInBlock: v = tid / 32; break;
          case SpecialReg::GlobalTid:
            v = static_cast<RegValue>(block) * kernel.blockDim + tid;
            break;
        }
        t.regs[inst.dst] = v;
        t.pc++;
        break;
      }
      case Opcode::LdGlobal: {
        const Addr addr =
            t.regs[inst.src0] + static_cast<RegValue>(inst.imm);
        t.regs[inst.dst] = mem.read32(addr);
        t.pc++;
        break;
      }
      case Opcode::StGlobal: {
        const Addr addr =
            t.regs[inst.src0] + static_cast<RegValue>(inst.imm);
        mem.write32(addr,
                    static_cast<std::uint32_t>(t.regs[inst.src1]));
        t.pc++;
        break;
      }
      case Opcode::LdShared: {
        const Addr addr =
            t.regs[inst.src0] + static_cast<RegValue>(inst.imm);
        sim_assert(addr + 4 <= shared.size());
        std::uint32_t v = 0;
        for (int i = 3; i >= 0; --i)
            v = (v << 8) | shared[addr + i];
        t.regs[inst.dst] = v;
        t.pc++;
        break;
      }
      case Opcode::StShared: {
        const Addr addr =
            t.regs[inst.src0] + static_cast<RegValue>(inst.imm);
        sim_assert(addr + 4 <= shared.size());
        const auto v = static_cast<std::uint32_t>(t.regs[inst.src1]);
        for (int i = 0; i < 4; ++i)
            shared[addr + i] = static_cast<std::uint8_t>(v >> (8 * i));
        t.pc++;
        break;
      }
      case Opcode::Bra: {
        bool p = !inst.predUsed || t.preds[inst.psrc];
        if (inst.predUsed && inst.predNegate)
            p = !t.preds[inst.psrc];
        t.pc = p ? inst.target : t.pc + 1;
        break;
      }
      case Opcode::Bar:
        t.atBarrier = true;
        t.pc++;
        break;
      case Opcode::Exit:
        t.done = true;
        break;
      default:
        t.regs[inst.dst] =
            evalAlu(inst.op, t.regs[inst.src0], t.regs[inst.src1],
                    t.regs[inst.src2], inst.imm);
        t.pc++;
        break;
    }
}

} // namespace

void
runFunctional(const KernelInfo &kernel, MemoryImage &mem,
              std::uint64_t max_steps)
{
    sim_assert(kernel.program.validate().empty());
    for (int block = 0; block < kernel.gridDim; ++block) {
        std::vector<ThreadState> threads(kernel.blockDim);
        std::vector<std::uint8_t> shared(
            std::max(kernel.smemPerBlock, 4), 0);
        for (;;) {
            bool progressed = false;
            bool all_done = true;
            for (int tid = 0; tid < kernel.blockDim; ++tid) {
                ThreadState &t = threads[tid];
                if (t.done || t.atBarrier)
                    continue;
                all_done = false;
                step(t, kernel, block, tid, mem, shared);
                sim_assert(t.steps <= max_steps);
                progressed = true;
            }
            if (all_done) {
                // Either everyone is done, or a barrier phase ended.
                bool any_waiting = false;
                for (auto &t : threads)
                    any_waiting = any_waiting || t.atBarrier;
                if (!any_waiting)
                    break; // block complete
                // Release the barrier: every non-done thread must be
                // waiting at it (structured kernels guarantee this).
                for (auto &t : threads) {
                    sim_assert(t.done || t.atBarrier);
                    t.atBarrier = false;
                }
                progressed = true;
            }
            sim_assert(progressed);
        }
    }
}

} // namespace cawa
