#include "workloads/workload.hh"

#include "common/sim_assert.hh"
#include "sim/functional.hh"

namespace cawa
{

KernelInfo
Workload::build(MemoryImage &mem, const WorkloadParams &params)
{
    params_ = params;
    outputs_.clear();
    KernelInfo kernel = doBuild(mem, params, outputs_);
    sim_assert(kernel.program.validate().empty());
    sim_assert(!outputs_.empty());
    built_ = true;
    return kernel;
}

bool
Workload::verify(const MemoryImage &sim_mem) const
{
    sim_assert(built_);
    MemoryImage ref;
    std::vector<MemRange> ranges;
    const KernelInfo kernel = doBuild(ref, params_, ranges);
    runFunctional(kernel, ref);
    for (const MemRange &range : ranges) {
        for (std::uint64_t b = 0; b < range.bytes; ++b) {
            if (ref.read8(range.base + b) != sim_mem.read8(range.base + b))
                return false;
        }
    }
    return true;
}

} // namespace cawa
