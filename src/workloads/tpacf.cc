/**
 * @file
 * tpacf — angular-correlation histogramming.
 *
 * Thread t holds one 3-component point and accumulates a 4-bin
 * histogram of dot products against a broadcast data set, binned by
 * a 3-branch ladder. Dot products are uniformly distributed, so the
 * ladder's divergence is statistically identical in every warp —
 * divergent but balanced, hence Non-sens.
 */

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "workloads/benchmarks.hh"

namespace cawa
{

namespace
{

constexpr Addr kPx = 0x01000000;
constexpr Addr kPy = 0x02000000;
constexpr Addr kPz = 0x03000000;
constexpr Addr kDx = 0x04000000;
constexpr Addr kDy = 0x05000000;
constexpr Addr kDz = 0x06000000;
constexpr Addr kHist = 0x07000000; ///< 4 bins per thread

constexpr int kPoints = 48;
constexpr std::int64_t kCoordMax = 256;
// Bin thresholds for dot in [0, 3*255^2].
constexpr std::int64_t kT1 = 30000;
constexpr std::int64_t kT2 = 50000;
constexpr std::int64_t kT3 = 80000;

Program
buildProgram()
{
    // r1=tid r2=px r3=py r4=pz r5=dx/addr r6=dy r7=dz r8=dot
    // r9-r12=h0..h3 r13=j r14=scratch
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.shlImm(14, 1, 2);
    b.ldGlobal(2, 14, kPx);
    b.ldGlobal(3, 14, kPy);
    b.ldGlobal(4, 14, kPz);
    b.movImm(9, 0);
    b.movImm(10, 0);
    b.movImm(11, 0);
    b.movImm(12, 0);
    b.movImm(13, 0);

    b.label("jloop");
    b.shlImm(14, 13, 2);
    b.ldGlobal(5, 14, kDx);
    b.ldGlobal(6, 14, kDy);
    b.ldGlobal(7, 14, kDz);
    b.mul(8, 2, 5);
    b.mad(8, 3, 6, 8);
    b.mad(8, 4, 7, 8);
    // Bin ladder.
    b.setpImm(0, CmpOp::Lt, 8, kT1);
    b.braIf("bin0", 0, "binend");
    b.setpImm(0, CmpOp::Lt, 8, kT2);
    b.braIf("bin1", 0, "binend");
    b.setpImm(0, CmpOp::Lt, 8, kT3);
    b.braIf("bin2", 0, "binend");
    b.addImm(12, 12, 1);
    b.bra("binend");
    b.label("bin2");
    b.addImm(11, 11, 1);
    b.bra("binend");
    b.label("bin1");
    b.addImm(10, 10, 1);
    b.bra("binend");
    b.label("bin0");
    b.addImm(9, 9, 1);
    b.label("binend");
    b.addImm(13, 13, 1);
    b.setpImm(0, CmpOp::Lt, 13, kPoints);
    b.braIf("jloop", 0, "jdone");
    b.label("jdone");

    b.shlImm(14, 1, 4);            // 4 bins x 4 bytes per thread
    b.stGlobal(14, 9, kHist);
    b.stGlobal(14, 10, kHist + 4);
    b.stGlobal(14, 11, kHist + 8);
    b.stGlobal(14, 12, kHist + 12);
    b.exit();
    return b.build();
}

} // namespace

KernelInfo
TpacfWorkload::doBuild(MemoryImage &mem, const WorkloadParams &params,
                       std::vector<MemRange> &outputs) const
{
    const int block_dim = 256;
    const int grid = std::max(1, static_cast<int>(36 * params.scale));
    const int n = block_dim * grid;

    Rng rng(params.seed * 961748941 + 37);
    for (int t = 0; t < n; ++t) {
        mem.write32(kPx + 4ull * t, static_cast<std::uint32_t>(
            rng.nextBounded(kCoordMax)));
        mem.write32(kPy + 4ull * t, static_cast<std::uint32_t>(
            rng.nextBounded(kCoordMax)));
        mem.write32(kPz + 4ull * t, static_cast<std::uint32_t>(
            rng.nextBounded(kCoordMax)));
    }
    for (int j = 0; j < kPoints; ++j) {
        mem.write32(kDx + 4ull * j, static_cast<std::uint32_t>(
            rng.nextBounded(kCoordMax)));
        mem.write32(kDy + 4ull * j, static_cast<std::uint32_t>(
            rng.nextBounded(kCoordMax)));
        mem.write32(kDz + 4ull * j, static_cast<std::uint32_t>(
            rng.nextBounded(kCoordMax)));
    }

    outputs.push_back({kHist, 16ull * n});

    KernelInfo kernel;
    kernel.name = "tpacf";
    kernel.program = buildProgram();
    kernel.gridDim = grid;
    kernel.blockDim = block_dim;
    kernel.regsPerThread = 16;
    kernel.smemPerBlock = 0;
    return kernel;
}

} // namespace cawa
