/**
 * @file
 * streamcluster — weighted point-to-median distance evaluation.
 *
 * Points are point-major rows (as in the original benchmark): each
 * warp re-touches its row lines on every dimension and median
 * iteration; the candidate
 * median coordinates and weights are broadcast loads shared by every
 * warp (the inter-warp spatial locality the paper cites when CACP
 * slightly hurts strcltr_small). The "small" data set (32
 * dimensions) has a per-warp working set that greedy scheduling can
 * keep resident; "mid" (64 dimensions, twice the points) streams far
 * past the L1 and lands in the Non-sens class of Table 2.
 */

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "workloads/benchmarks.hh"

namespace cawa
{

namespace
{

constexpr Addr kPts = 0x01000000;
constexpr Addr kCtr = 0x04000000;
constexpr Addr kWgt = 0x05000000;
constexpr Addr kOut = 0x06000000;
constexpr Addr kDist = 0x07000000;

constexpr int kCenters = 8;

Program
buildProgram(int dim, int n, bool shifting)
{
    // r1=tid r2=c r3=best r4=bestc r5=dist r6=d r7..r11 scratch
    // r12=n-1 mask (shifting variant; n is a power of two)
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.movImm(2, 0);
    b.movImm(3, 0x7fffffffffffll);
    b.movImm(4, 0);
    b.movImm(12, n - 1);

    b.label("cloop");
    b.movImm(5, 0);
    b.movImm(6, 0);
    b.label("dloop");
    // Point row: the "small" set re-reads the thread's own row per
    // median (cache-sensitive reuse); the "mid" gain phase evaluates
    // a shifting slice per candidate, so its rows stream with no
    // cross-median reuse (Table 2's Non-sens class).
    if (shifting) {
        // mid: a fresh slice per (median, dimension) access -- pure
        // streaming, nothing to retain.
        b.mulImm(7, 2, dim);
        b.add(7, 7, 6);            // c*dim + d
        b.mulImm(7, 7, 997);
        b.add(7, 7, 1);
        b.and_(7, 7, 12);          // index & (n-1)
        b.mulImm(7, 7, dim);
    } else {
        // small: a per-median slice; the thread's rows are re-read
        // across the dimension loop but change with each median.
        b.mulImm(7, 2, 997);       // c*997
        b.add(7, 7, 1);
        b.and_(7, 7, 12);          // (tid + c*997) & (n-1)
        b.mulImm(7, 7, dim);
    }
    b.add(7, 7, 6);
    b.shlImm(7, 7, 2);
    b.ldGlobal(8, 7, kPts);
    b.mulImm(9, 2, dim);
    b.add(9, 9, 6);
    b.shlImm(9, 9, 2);
    b.ldGlobal(10, 9, kCtr);
    b.sub(11, 8, 10);
    b.mad(5, 11, 11, 5);
    b.addImm(6, 6, 1);
    b.setpImm(0, CmpOp::Lt, 6, dim);
    b.braIf("dloop", 0, "dexit");
    b.label("dexit");
    // Weighted cost = dist * WGT[c].
    b.shlImm(9, 2, 2);
    b.ldGlobal(10, 9, kWgt);
    b.mul(5, 5, 10);
    b.setp(1, CmpOp::Lt, 5, 3);
    b.selp(3, 1, 5, 3);
    b.selp(4, 1, 2, 4);
    b.addImm(2, 2, 1);
    b.setpImm(0, CmpOp::Lt, 2, kCenters);
    b.braIf("cloop", 0, "cexit");
    b.label("cexit");

    b.shlImm(7, 1, 2);
    b.stGlobal(7, 4, kOut);
    b.stGlobal(7, 3, kDist);
    b.exit();
    return b.build();
}

} // namespace

KernelInfo
StreamclusterWorkload::doBuild(MemoryImage &mem,
                               const WorkloadParams &params,
                               std::vector<MemRange> &outputs) const
{
    const int block_dim = 256;
    const int dim = mid_ ? 64 : 32;
    const int base_grid = mid_ ? 64 : 48;
    const int grid =
        std::max(1, static_cast<int>(base_grid * params.scale));
    const int n = block_dim * grid;

    Rng rng(params.seed * 179424673 + (mid_ ? 101 : 41));
    for (int i = 0; i < n; ++i)
        for (int d = 0; d < dim; ++d)
            mem.write32(kPts + 4ull * (static_cast<Addr>(i) * dim + d),
                        static_cast<std::uint32_t>(rng.nextBounded(128)));
    for (int c = 0; c < kCenters; ++c) {
        for (int d = 0; d < dim; ++d)
            mem.write32(kCtr + 4ull * (c * dim + d),
                        static_cast<std::uint32_t>(rng.nextBounded(128)));
        mem.write32(kWgt + 4ull * c,
                    1 + static_cast<std::uint32_t>(rng.nextBounded(7)));
    }

    outputs.push_back({kOut, 4ull * n});
    outputs.push_back({kDist, 4ull * n});

    KernelInfo kernel;
    kernel.name = mid_ ? "strcltr_mid" : "strcltr_small";
    kernel.program = buildProgram(dim, n, mid_);
    kernel.gridDim = grid;
    kernel.blockDim = block_dim;
    kernel.regsPerThread = 16;
    kernel.smemPerBlock = 0;
    return kernel;
}

} // namespace cawa
