/**
 * @file
 * bfs — one frontier-expansion step over a CSR graph.
 *
 * Thread i owns node i and walks its adjacency list. Each neighbor is
 * checked against a visited flag: unvisited neighbors take the
 * "child" path (an extra cost load and counter update), visited ones
 * the "non-child" path — Algorithm 1 of the paper. The default input
 * draws node degrees from a bounded power law (workload imbalance);
 * WorkloadParams::bfsBalanced gives every node the same degree so
 * only the branch-divergence effect remains (Fig 2(b)).
 *
 * Per-thread pseudo-code:
 *   off  = OFF[i]; end = OFF[i+1]
 *   while (off < end):
 *     e = EDG[off]
 *     if (VIS[e] == 0): sum += COSTN[e]; nchild++
 *     else:             nnon++
 *     off++
 *   NCH[i] = nchild; NNON[i] = nnon; SUM[i] = sum
 *
 * Unlike real bfs, visited flags are read-only (the benign update
 * race of the original would make verification order-dependent); the
 * memory access pattern and control flow are unchanged.
 */

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "workloads/benchmarks.hh"

namespace cawa
{

namespace
{

constexpr Addr kOff = 0x01000000;
constexpr Addr kEdg = 0x02000000;
constexpr Addr kVis = 0x03000000;
constexpr Addr kCostN = 0x04000000;
constexpr Addr kNch = 0x05000000;
constexpr Addr kNnon = 0x06000000;
constexpr Addr kSum = 0x07000000;

Program
buildProgram()
{
    // r1=tid r2=addr r3=off r4=end r5=nchild r6=nnon r7=sum
    // r8..r12 scratch
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.shlImm(2, 1, 2);
    b.ldGlobal(3, 2, kOff);        // off = OFF[tid]
    b.ldGlobal(4, 2, kOff + 4);    // end = OFF[tid+1]
    b.movImm(5, 0);
    b.movImm(6, 0);
    b.movImm(7, 0);

    b.label("loop");
    b.setp(0, CmpOp::Ge, 3, 4);    // off >= end?
    b.braIf("done", 0, "done");
    b.shlImm(8, 3, 2);
    b.ldGlobal(9, 8, kEdg);        // e = EDG[off]
    b.shlImm(10, 9, 2);
    b.ldGlobal(11, 10, kVis);      // v = VIS[e]
    b.setpImm(1, CmpOp::Ne, 11, 0);
    b.braIf("nonchild", 1, "endif");
    // Child path: update the frontier cost estimate -- the real bfs
    // relaxation plus some per-edge arithmetic (hash-mix the cost to
    // model the cost-update work), so the taken/not-taken paths have
    // clearly different lengths (the Fig 6 / Fig 2(b) effect).
    b.ldGlobal(12, 10, kCostN);
    b.sfu(12, 12);
    b.shrImm(12, 12, 48);
    b.add(7, 7, 12);
    b.mulImm(7, 7, 3);
    b.addImm(7, 7, 1);
    b.addImm(5, 5, 1);
    b.bra("endif");
    b.label("nonchild");
    b.addImm(6, 6, 1);
    b.label("endif");
    b.addImm(3, 3, 1);
    b.bra("loop");

    b.label("done");
    b.stGlobal(2, 5, kNch);
    b.stGlobal(2, 6, kNnon);
    b.stGlobal(2, 7, kSum);
    b.exit();
    return b.build();
}

} // namespace

KernelInfo
BfsWorkload::doBuild(MemoryImage &mem, const WorkloadParams &params,
                     std::vector<MemRange> &outputs) const
{
    const int block_dim = 512; // 16 warps, as in the Fig 12 block
    const int grid = std::max(1, static_cast<int>(48 * params.scale));
    const int n = block_dim * grid;

    Rng rng(params.seed * 7919 + 17);

    // Degrees. The imbalanced (default) input draws a per-warp base
    // degree with a heavy-ish tail plus small per-lane noise: warp
    // execution times spread smoothly (the sorted per-warp curve of
    // Fig 2(a)) and the critical warp is distinctly the heaviest.
    // The balanced input (Fig 2(b)) gives every node the same degree,
    // leaving only the visited/not-visited branch divergence.
    std::vector<std::uint32_t> degree(n);
    std::uint32_t warp_base = 8;
    for (int i = 0; i < n; ++i) {
        if (i % 32 == 0)
            warp_base = 4 + static_cast<std::uint32_t>(
                rng.nextPareto(1.6, 28));
        degree[i] = params.bfsBalanced
            ? 8
            : warp_base + static_cast<std::uint32_t>(
                rng.nextBounded(4));
    }

    std::uint32_t off = 0;
    for (int i = 0; i < n; ++i) {
        mem.write32(kOff + 4ull * i, off);
        off += degree[i];
    }
    mem.write32(kOff + 4ull * n, off);

    // Edges mirror a frontier expansion over a community-structured
    // graph: the d-th neighbours of a warp's nodes live together in
    // one 64-node region chosen per (warp, d) -- consecutive nodes'
    // adjacency lists overlap heavily in real CSR graphs. Since
    // visited flags are uniform per region (below), a warp's
    // visited-check branch is *uniform* on most steps: warps execute
    // either the child or the non-child path, not both, which is
    // what spreads the per-warp dynamic instruction counts in
    // Fig 2(b). Lanes with extra neighbours (imbalanced input) fall
    // back to random regions, adding divergence and scatter.
    const std::uint32_t regions =
        static_cast<std::uint32_t>(n / 64);
    auto mix = [](std::uint64_t x) {
        x += 0x9e3779b97f4a7c15ULL;
        x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
        x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
        return x ^ (x >> 31);
    };
    std::uint32_t emitted = 0;
    for (int i = 0; i < n; ++i) {
        const std::uint32_t warp = static_cast<std::uint32_t>(i) / 32;
        const std::uint32_t lane = static_cast<std::uint32_t>(i) % 32;
        for (std::uint32_t d = 0; d < degree[i]; ++d) {
            std::uint32_t target;
            if (d < 8 || params.bfsBalanced) {
                const auto region = static_cast<std::uint32_t>(
                    mix(params.seed * 1315423911ull + warp * 131 + d) %
                    regions);
                target = region * 64 + lane * 2 + (d & 1);
            } else {
                target =
                    static_cast<std::uint32_t>(rng.nextBounded(n));
            }
            mem.write32(kEdg + 4ull * emitted, target);
            emitted++;
        }
    }
    // Visited flags are uniform per 64-node region (a frontier
    // sweeps whole communities together); combined with the
    // region-targeted adjacency above, most visited-check branches
    // are warp-uniform.
    std::uint32_t region_visited = 0;
    for (int i = 0; i < n; ++i) {
        if (i % 64 == 0)
            region_visited =
                static_cast<std::uint32_t>(rng.nextBounded(2));
        mem.write32(kVis + 4ull * i, region_visited);
        mem.write32(kCostN + 4ull * i,
                    static_cast<std::uint32_t>(rng.nextBounded(256)));
    }

    outputs.push_back({kNch, 4ull * n});
    outputs.push_back({kNnon, 4ull * n});
    outputs.push_back({kSum, 4ull * n});

    KernelInfo kernel;
    kernel.name = "bfs";
    kernel.program = buildProgram();
    kernel.gridDim = grid;
    kernel.blockDim = block_dim;
    kernel.regsPerThread = 16;
    kernel.smemPerBlock = 0;
    return kernel;
}

} // namespace cawa
