/**
 * @file
 * kmeans — nearest-centroid assignment over a feature matrix.
 *
 * Features are stored point-major (F[i*dim + d]) as in Rodinia: a
 * warp's load of dimension d is uncoalesced (16 transactions, two
 * threads' rows per 128B line) and the same 16 lines are re-touched
 * on *every* d and c iteration. A warp whose lines stay resident
 * hits continuously; once evicted it misses continuously. With all
 * 48 warps of an SM active the per-set pressure (96 lines re-inserted
 * per round into 16 ways) thrashes the 16KB L1, while schedulers that
 * concentrate issue on few warps (GTO/gCAWS) keep those warps'
 * working sets resident — the paper's motivating case for greedy
 * scheduling and for CACP retention (kmeans is its 3.13x headline).
 *
 * Per-thread pseudo-code:
 *   best = INF; bestc = 0
 *   for c in 0..k-1:
 *     dist = 0
 *     for d in 0..dim-1:
 *       diff = F[d*n+i] - C[c*dim+d]; dist += diff*diff
 *     if dist < best: best = dist; bestc = c     (branch-free selp)
 *   OUT[i] = bestc; DIST[i] = dist
 */

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "workloads/benchmarks.hh"

namespace cawa
{

namespace
{

constexpr Addr kFeat = 0x01000000;
constexpr Addr kCent = 0x02000000;
constexpr Addr kOut = 0x03000000;
constexpr Addr kDist = 0x04000000;

constexpr int kClusters = 6;
constexpr int kDim = 16;

Program
buildProgram()
{
    // r1=tid r2=c r3=best r4=bestc r5=dist r6=d r7..r11 scratch
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.movImm(2, 0);
    b.movImm(3, 0x7fffffff);
    b.movImm(4, 0);

    b.label("cloop");
    b.movImm(5, 0);
    b.movImm(6, 0);
    b.label("dloop");
    b.mulImm(7, 1, kDim);          // tid*dim (point-major)
    b.add(7, 7, 6);                // + d
    b.shlImm(7, 7, 2);
    b.ldGlobal(8, 7, kFeat);       // f
    b.mulImm(9, 2, kDim);          // c*dim
    b.add(9, 9, 6);                // + d
    b.shlImm(9, 9, 2);
    b.ldGlobal(10, 9, kCent);      // cd
    b.sub(11, 8, 10);
    b.mad(5, 11, 11, 5);           // dist += diff*diff
    b.addImm(6, 6, 1);
    b.setpImm(0, CmpOp::Lt, 6, kDim);
    b.braIf("dloop", 0, "dexit");
    b.label("dexit");
    // Branch-free min update.
    b.setp(1, CmpOp::Lt, 5, 3);
    b.selp(3, 1, 5, 3);
    b.selp(4, 1, 2, 4);
    b.addImm(2, 2, 1);
    b.setpImm(0, CmpOp::Lt, 2, kClusters);
    b.braIf("cloop", 0, "cexit");
    b.label("cexit");

    b.shlImm(7, 1, 2);
    b.stGlobal(7, 4, kOut);
    b.stGlobal(7, 3, kDist);
    b.exit();
    return b.build();
}

} // namespace

KernelInfo
KmeansWorkload::doBuild(MemoryImage &mem, const WorkloadParams &params,
                        std::vector<MemRange> &outputs) const
{
    const int block_dim = 256; // 8 warps
    const int grid = std::max(1, static_cast<int>(64 * params.scale));
    const int n = block_dim * grid;

    Rng rng(params.seed * 50021 + 3);
    for (int i = 0; i < n; ++i)
        for (int d = 0; d < kDim; ++d)
            mem.write32(kFeat + 4ull * (static_cast<Addr>(i) * kDim + d),
                        static_cast<std::uint32_t>(rng.nextBounded(256)));
    for (int c = 0; c < kClusters; ++c)
        for (int d = 0; d < kDim; ++d)
            mem.write32(kCent + 4ull * (c * kDim + d),
                        static_cast<std::uint32_t>(rng.nextBounded(256)));

    outputs.push_back({kOut, 4ull * n});
    outputs.push_back({kDist, 4ull * n});

    KernelInfo kernel;
    kernel.name = "kmeans";
    kernel.program = buildProgram();
    kernel.gridDim = grid;
    kernel.blockDim = block_dim;
    kernel.regsPerThread = 16;
    kernel.smemPerBlock = 0;
    return kernel;
}

} // namespace cawa
