/**
 * @file
 * backprop — feed-forward layer evaluation (fully unrolled).
 *
 * Thread t computes activation(sum_i IN[i] * W[i*n + t]): the weight
 * loads are perfectly coalesced streaming with no reuse, the input
 * loads are warp-wide broadcasts, and there is not a single branch in
 * the kernel — the canonical balanced Non-sens workload.
 */

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "workloads/benchmarks.hh"

namespace cawa
{

namespace
{

constexpr Addr kIn = 0x01000000;
constexpr Addr kW = 0x02000000;
constexpr Addr kOut = 0x03000000;

constexpr int kInputs = 16;

Program
buildProgram(int n)
{
    // r1=tid r2=acc r3=in r4=w r5=addr
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.movImm(2, 0);
    for (int i = 0; i < kInputs; ++i) {
        b.movImm(5, 4ll * i);
        b.ldGlobal(3, 5, kIn);                 // broadcast IN[i]
        b.shlImm(5, 1, 2);
        b.ldGlobal(4, 5, kW + 4ll * i * n);    // W[i*n + tid]
        b.mad(2, 3, 4, 2);
    }
    b.sfu(2, 2); // activation
    b.shlImm(5, 1, 2);
    b.stGlobal(5, 2, kOut);
    b.exit();
    return b.build();
}

} // namespace

KernelInfo
BackpropWorkload::doBuild(MemoryImage &mem, const WorkloadParams &params,
                          std::vector<MemRange> &outputs) const
{
    const int block_dim = 256;
    const int grid = std::max(1, static_cast<int>(24 * params.scale));
    const int n = block_dim * grid;

    Rng rng(params.seed * 472882027 + 7);
    for (int i = 0; i < kInputs; ++i) {
        mem.write32(kIn + 4ull * i,
                    static_cast<std::uint32_t>(rng.nextBounded(256)));
        for (int t = 0; t < n; ++t)
            mem.write32(kW + 4ull * (static_cast<Addr>(i) * n + t),
                        static_cast<std::uint32_t>(rng.nextBounded(256)));
    }

    outputs.push_back({kOut, 4ull * n});

    KernelInfo kernel;
    kernel.name = "backprop";
    kernel.program = buildProgram(n);
    kernel.gridDim = grid;
    kernel.blockDim = block_dim;
    kernel.regsPerThread = 16;
    kernel.smemPerBlock = 0;
    return kernel;
}

} // namespace cawa
