/**
 * @file
 * needle — Needleman-Wunsch wavefront over a shared-memory tile.
 *
 * One 32-thread warp per block processes a 32x32 tile anti-diagonal
 * by anti-diagonal with a bar.sync between diagonals (63 barriers per
 * block). Thread t computes cell (i=t, j=d-t) when j is in range, so
 * the warp diverges at the wavefront edges. All scores are offset by
 * +10000 to stay positive (shared memory holds 32-bit values that
 * load zero-extended). The single warp per block is why the paper's
 * Fig 11 reports a trivially-perfect CPL accuracy for needle.
 */

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "workloads/benchmarks.hh"

namespace cawa
{

namespace
{

constexpr int kBs = 32;              ///< tile edge
constexpr int kShPitch = kBs + 1;    ///< shared tile pitch (words)
constexpr int kBias = 10000;
constexpr int kPenalty = 1;

constexpr Addr kRef = 0x01000000;
constexpr Addr kOut = 0x02000000;

Program
buildProgram()
{
    // r1=t r2=cta r3=base(bytes) r4=d r5=j r6=addr r7=scratch
    // r8=shaddr r9=score r10=diag r11=up r12=left r13=jj
    ProgramBuilder b;
    b.s2r(1, SpecialReg::TidX);
    b.s2r(2, SpecialReg::CtaIdX);
    b.mulImm(3, 2, kBs * kBs * 4);

    // Boundary init: sh[0][t+1] and sh[t+1][0] = bias - (t+1);
    // thread 0 also writes sh[0][0] = bias.
    b.addImm(7, 1, 1);              // t+1
    b.movImm(9, kBias);
    b.sub(9, 9, 7);                 // bias - (t+1)
    b.shlImm(6, 7, 2);              // (t+1)*4 => sh[0][t+1]
    b.stShared(6, 9, 0);
    b.mulImm(6, 7, kShPitch * 4);   // (t+1)*pitch*4 => sh[t+1][0]
    b.stShared(6, 9, 0);
    b.setpImm(0, CmpOp::Ne, 1, 0);
    b.braIf("init_done", 0, "init_done");
    b.movImm(9, kBias);
    b.movImm(6, 0);
    b.stShared(6, 9, 0);            // sh[0][0]
    b.label("init_done");
    b.bar();

    b.movImm(4, 0);
    b.label("diag");
    b.sub(5, 4, 1);                 // j = d - t (signed)
    b.setpImm(0, CmpOp::Ge, 5, 0);
    b.braIfNot("skip", 0, "skip");
    b.setpImm(0, CmpOp::Lt, 5, kBs);
    b.braIfNot("skip", 0, "skip");
    // ref score REF[base + (i*32 + j)*4]
    b.shlImm(6, 1, 7);              // i*32*4
    b.shlImm(7, 5, 2);
    b.add(6, 6, 7);
    b.add(6, 6, 3);
    b.ldGlobal(9, 6, kRef);
    // shared base for sh[i][j]
    b.mulImm(8, 1, kShPitch * 4);
    b.shlImm(7, 5, 2);
    b.add(8, 8, 7);
    b.ldShared(10, 8, 0);                       // sh[i][j]
    b.ldShared(11, 8, 4);                       // sh[i][j+1]
    b.ldShared(12, 8, kShPitch * 4);            // sh[i+1][j]
    b.add(10, 10, 9);
    b.addImm(11, 11, -kPenalty);
    b.addImm(12, 12, -kPenalty);
    b.max(10, 10, 11);
    b.max(10, 10, 12);
    b.stShared(8, 10, kShPitch * 4 + 4);        // sh[i+1][j+1]
    b.label("skip");
    b.bar();
    b.addImm(4, 4, 1);
    b.setpImm(0, CmpOp::Lt, 4, 2 * kBs - 1);
    b.braIf("diag", 0, "diag_done");
    b.label("diag_done");

    // Write the tile back: row t, all 32 columns.
    b.movImm(13, 0);
    b.label("wb");
    b.addImm(7, 1, 1);
    b.mulImm(8, 7, kShPitch * 4);
    b.shlImm(6, 13, 2);
    b.add(8, 8, 6);
    b.ldShared(9, 8, 4);            // sh[t+1][jj+1]
    b.shlImm(6, 1, 7);              // (t*32 + jj)*4
    b.shlImm(7, 13, 2);
    b.add(6, 6, 7);
    b.add(6, 6, 3);
    b.stGlobal(6, 9, kOut);
    b.addImm(13, 13, 1);
    b.setpImm(0, CmpOp::Lt, 13, kBs);
    b.braIf("wb", 0, "wb_done");
    b.label("wb_done");
    b.exit();
    return b.build();
}

} // namespace

KernelInfo
NeedleWorkload::doBuild(MemoryImage &mem, const WorkloadParams &params,
                        std::vector<MemRange> &outputs) const
{
    const int grid = std::max(1, static_cast<int>(90 * params.scale));

    Rng rng(params.seed * 32452843 + 23);
    for (int blk = 0; blk < grid; ++blk)
        for (int c = 0; c < kBs * kBs; ++c)
            mem.write32(kRef + 4ull * (static_cast<Addr>(blk) * kBs *
                                           kBs +
                                       c),
                        static_cast<std::uint32_t>(rng.nextBounded(16)));

    outputs.push_back(
        {kOut, 4ull * static_cast<std::uint64_t>(grid) * kBs * kBs});

    KernelInfo kernel;
    kernel.name = "needle";
    kernel.program = buildProgram();
    kernel.gridDim = grid;
    kernel.blockDim = kBs;          // one warp per block
    kernel.regsPerThread = 16;
    kernel.smemPerBlock = kShPitch * kShPitch * 4;
    return kernel;
}

} // namespace cawa
