/**
 * @file
 * Adapter between the workload registry and the sweep engine: turns
 * (workload name, GpuConfig, WorkloadParams) specs into SweepJobs
 * whose build/verify callbacks construct the workload on the worker
 * thread and check the simulated image against the functional
 * reference.
 */

#ifndef CAWA_WORKLOADS_SWEEP_JOBS_HH
#define CAWA_WORKLOADS_SWEEP_JOBS_HH

#include <string>
#include <vector>

#include "sim/sweep.hh"
#include "workloads/workload.hh"

namespace cawa
{

struct WorkloadJobSpec
{
    std::string workload;
    GpuConfig cfg;
    WorkloadParams params;
};

/** Stable label, e.g. "bfs.gcaws.cacp.seed1.scale0.5". */
std::string workloadJobName(const WorkloadJobSpec &spec);

/**
 * Build a self-contained job for @p spec. The workload object is
 * created inside the job's build callback (each job re-creates its
 * own), so jobs from one spec list can run on any threads in any
 * order with bit-identical results.
 */
SweepJob makeWorkloadJob(const WorkloadJobSpec &spec);

std::vector<SweepJob>
makeWorkloadJobs(const std::vector<WorkloadJobSpec> &specs);

} // namespace cawa

#endif // CAWA_WORKLOADS_SWEEP_JOBS_HH
