/**
 * @file
 * Adapter between the workload registry and the sweep engine: turns
 * (workload name, GpuConfig, WorkloadParams) specs into SweepJobs
 * whose build/verify callbacks construct the workload on the worker
 * thread and check the simulated image against the functional
 * reference.
 */

#ifndef CAWA_WORKLOADS_SWEEP_JOBS_HH
#define CAWA_WORKLOADS_SWEEP_JOBS_HH

#include <string>
#include <vector>

#include "sim/report_json.hh"
#include "sim/sweep.hh"
#include "workloads/workload.hh"

namespace cawa
{

struct WorkloadJobSpec
{
    std::string workload;
    GpuConfig cfg;
    WorkloadParams params;
};

/** Stable label, e.g. "bfs.gcaws.cacp.seed1.scale0.5". */
std::string workloadJobName(const WorkloadJobSpec &spec);

/**
 * Build a self-contained job for @p spec. The workload object is
 * created inside the job's build callback (each job re-creates its
 * own), so jobs from one spec list can run on any threads in any
 * order with bit-identical results.
 */
SweepJob makeWorkloadJob(const WorkloadJobSpec &spec);

std::vector<SweepJob>
makeWorkloadJobs(const std::vector<WorkloadJobSpec> &specs);

// ---------------------------------------------------------------------
// Worker-spec wire format, shared by every entrypoint that ships a
// job across a process boundary: the cawa_sweep --worker pipe, the
// shard-runner matrix, and cawad submit frames.
// ---------------------------------------------------------------------

/**
 * Inverse of schedulerKindName(). Throws SimError (kind Config) for
 * an unknown name; CLI frontends catch and exit 2.
 */
SchedulerKind schedulerKindFromName(const std::string &name);

/** Inverse of cachePolicyKindName(); throws SimError for unknowns. */
CachePolicyKind cachePolicyKindFromName(const std::string &name);

/**
 * Parse the portable core of a job spec -- workload, scheduler,
 * policy, seed, scale -- on top of the fixed fermiGtx480() baseline.
 * Validates the workload name against the registry (SimError, kind
 * Config, on an unknown one) so a bad spec fails at the protocol
 * edge instead of deep inside a worker.
 */
WorkloadJobSpec workloadSpecFromJson(const JsonValue &doc);

/**
 * Serialize one job as the `--worker` spec frame. Everything a worker
 * needs to rebuild the job deterministically travels in-band: the
 * workload spec, the config knobs the sweep set, the checkpoint
 * wiring (including the supervisor's per-attempt resume path) and the
 * armed fault-injection knobs.
 */
std::string workerSpecJson(const WorkloadJobSpec &spec,
                           const SweepJob &job, int jobAttempts,
                           int attempt, double heartbeatSec);

/** Decoded workerSpecJson() frame. */
struct WorkerSpec
{
    SweepJob job;
    int jobAttempts = 1;
    int attempt = 1;
    double heartbeatSec = 0.25;
};

/** Inverse of workerSpecJson(); throws on a malformed document. */
WorkerSpec workerSpecFromJson(const JsonValue &doc);

/**
 * Body of the hidden worker entrypoint (`cawa_sweep --worker`,
 * `cawad --worker`): read one spec frame from @p inFd, rebuild the
 * job, and run it under runSweepWorker() streaming heartbeat /
 * checkpoint-written / result frames to @p outFd. Returns the
 * process exit status; diagnostics go to stderr prefixed with
 * @p toolName, never to @p outFd (that fd carries the protocol).
 */
int runWorkerModeFromFds(int inFd, int outFd, const char *toolName);

} // namespace cawa

#endif // CAWA_WORKLOADS_SWEEP_JOBS_HH
