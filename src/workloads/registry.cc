#include "workloads/registry.hh"

#include "common/sim_assert.hh"
#include "workloads/benchmarks.hh"

namespace cawa
{

std::vector<std::string>
allWorkloadNames()
{
    return {
        "bfs", "b+tree", "heartwall", "kmeans", "needle", "srad_1",
        "strcltr_small",
        "backprop", "particle", "pathfinder", "strcltr_mid", "tpacf",
    };
}

std::vector<std::string>
sensitiveWorkloadNames()
{
    return {
        "bfs", "b+tree", "heartwall", "kmeans", "needle", "srad_1",
        "strcltr_small",
    };
}

std::unique_ptr<Workload>
makeWorkload(const std::string &name)
{
    if (name == "bfs")
        return std::make_unique<BfsWorkload>();
    if (name == "b+tree")
        return std::make_unique<BtreeWorkload>();
    if (name == "heartwall")
        return std::make_unique<HeartwallWorkload>();
    if (name == "kmeans")
        return std::make_unique<KmeansWorkload>();
    if (name == "needle")
        return std::make_unique<NeedleWorkload>();
    if (name == "srad_1")
        return std::make_unique<SradWorkload>();
    if (name == "strcltr_small")
        return std::make_unique<StreamclusterWorkload>(false);
    if (name == "strcltr_mid")
        return std::make_unique<StreamclusterWorkload>(true);
    if (name == "backprop")
        return std::make_unique<BackpropWorkload>();
    if (name == "particle")
        return std::make_unique<ParticleWorkload>();
    if (name == "pathfinder")
        return std::make_unique<PathfinderWorkload>();
    if (name == "tpacf")
        return std::make_unique<TpacfWorkload>();
    sim_panic("unknown workload name");
}

} // namespace cawa
