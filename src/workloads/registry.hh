/**
 * @file
 * Workload registry: construct benchmarks by name and enumerate the
 * Table 2 suite in the paper's order.
 */

#ifndef CAWA_WORKLOADS_REGISTRY_HH
#define CAWA_WORKLOADS_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "workloads/workload.hh"

namespace cawa
{

/** The Table 2 suite in order (Sens first, then Non-sens). */
std::vector<std::string> allWorkloadNames();

/** The cache/scheduler-sensitive subset (Table 2 "Sens"). */
std::vector<std::string> sensitiveWorkloadNames();

/** Construct a workload by its Table 2 name; panics on a bad name. */
std::unique_ptr<Workload> makeWorkload(const std::string &name);

} // namespace cawa

#endif // CAWA_WORKLOADS_REGISTRY_HH
