/**
 * @file
 * b+tree — parallel lookups over a 4-level, 16-ary search tree.
 *
 * Node x at level l covers key range [x*W_l, (x+1)*W_l) of a 2^20 key
 * domain (W_l = 2^20 >> 4l) and stores the 16 upper boundaries of its
 * children. A lookup scans the node's keys until `key < key_i` and
 * descends to child 16x+i. The root and level-1 nodes are shared by
 * every thread (strong inter-warp reuse — the paper's explanation for
 * CAWA's slight b+tree degradation), leaf accesses are irregular, and
 * the scan loop's data-dependent trip count gives mild divergence.
 */

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "workloads/benchmarks.hh"

namespace cawa
{

namespace
{

constexpr int kLevels = 4;
constexpr int kFanout = 16;
constexpr int kKeyBits = 20;

constexpr Addr kNodeBase[kLevels] = {
    0x01000000, 0x02000000, 0x03000000, 0x04000000,
};
constexpr Addr kVal = 0x05000000;
constexpr Addr kOut = 0x06000000;

Program
buildProgram()
{
    // r1=tid r2=key r3=node r4=i r5=addr r6=scratch r7=key_i r8=val
    ProgramBuilder b;
    b.s2r(1, SpecialReg::TidX);
    b.s2r(6, SpecialReg::GlobalTid);
    b.sfu(2, 6);                   // hash the global tid...
    b.shrImm(2, 2, 64 - kKeyBits); // ...into a 20-bit key
    b.movImm(3, 0);

    for (int l = 0; l < kLevels; ++l) {
        const std::string scan = "scan" + std::to_string(l);
        const std::string done = "done" + std::to_string(l);
        b.movImm(4, 0);
        b.label(scan);
        b.setpImm(0, CmpOp::Ge, 4, kFanout);
        b.braIf(done, 0, done);
        b.shlImm(5, 3, 6);         // node * 64 bytes
        b.shlImm(6, 4, 2);
        b.add(5, 5, 6);
        b.ldGlobal(7, 5, kNodeBase[l]);
        b.setp(1, CmpOp::Lt, 2, 7); // key < key_i -> descend here
        b.braIf(done, 1, done);
        b.addImm(4, 4, 1);
        b.bra(scan);
        b.label(done);
        b.shlImm(3, 3, 4);         // node = node*16 + i
        b.add(3, 3, 4);
    }

    // Leaf payload: VAL[leaf], where leaf = final node index.
    b.shlImm(5, 3, 2);
    b.ldGlobal(8, 5, kVal);
    b.add(8, 8, 4);
    b.s2r(6, SpecialReg::GlobalTid);
    b.shlImm(6, 6, 2);
    b.stGlobal(6, 8, kOut);
    b.exit();
    return b.build();
}

} // namespace

KernelInfo
BtreeWorkload::doBuild(MemoryImage &mem, const WorkloadParams &params,
                       std::vector<MemRange> &outputs) const
{
    const int block_dim = 256;
    const int grid = std::max(1, static_cast<int>(48 * params.scale));
    const int n = block_dim * grid;

    // Populate the boundary keys of every node at every level.
    int level_nodes = 1;
    for (int l = 0; l < kLevels; ++l) {
        const std::uint64_t width = (1ull << kKeyBits) / level_nodes;
        const std::uint64_t sub = width / kFanout;
        for (int x = 0; x < level_nodes; ++x) {
            for (int j = 0; j < kFanout; ++j) {
                const std::uint64_t boundary =
                    static_cast<std::uint64_t>(x) * width +
                    (j + 1) * sub;
                mem.write32(kNodeBase[l] +
                                4ull * (static_cast<Addr>(x) * kFanout +
                                        j),
                            static_cast<std::uint32_t>(boundary));
            }
        }
        level_nodes *= kFanout;
    }

    // Leaf payloads (level_nodes now == number of leaves).
    Rng rng(params.seed * 104729 + 5);
    for (int leaf = 0; leaf < level_nodes; ++leaf)
        mem.write32(kVal + 4ull * leaf,
                    static_cast<std::uint32_t>(rng.nextBounded(1 << 16)));

    outputs.push_back({kOut, 4ull * n});

    KernelInfo kernel;
    kernel.name = "b+tree";
    kernel.program = buildProgram();
    kernel.gridDim = grid;
    kernel.blockDim = block_dim;
    kernel.regsPerThread = 16;
    kernel.smemPerBlock = 0;
    return kernel;
}

} // namespace cawa
