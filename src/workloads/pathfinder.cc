/**
 * @file
 * pathfinder — dynamic-programming row sweep.
 *
 * Each 256-thread block owns a 256-column strip. The running row
 * lives in shared memory, double-buffered; every row costs one
 * barrier. Neighbour indices are clamped branch-free with min/max,
 * so the kernel is perfectly regular: Table 2's Non-sens profile
 * with a barrier-heavy rhythm.
 *
 *   cur[t] = DATA[r][gid] + min(prev[t-1], prev[t], prev[t+1])
 */

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "workloads/benchmarks.hh"

namespace cawa
{

namespace
{

constexpr Addr kRow0 = 0x01000000;
constexpr Addr kData = 0x02000000;
constexpr Addr kOut = 0x03000000;

constexpr int kRows = 16;
constexpr int kBlockDim = 256;
constexpr int kBufBytes = kBlockDim * 4;

Program
buildProgram(int n)
{
    // r1=t r2=gid r3=r r4=prevOff r5=curOff r6=idx r7=lv r8=mv r9=rv
    // r10=min r11=data/addr r12=const r13=scratch
    ProgramBuilder b;
    b.s2r(1, SpecialReg::TidX);
    b.s2r(2, SpecialReg::GlobalTid);

    // prev[t] = ROW0[gid]
    b.shlImm(11, 2, 2);
    b.ldGlobal(7, 11, kRow0);
    b.shlImm(6, 1, 2);
    b.stShared(6, 7, 0);
    b.bar();

    b.movImm(3, 0);
    b.label("rowloop");
    // prevOff = (r & 1) * kBufBytes; curOff = kBufBytes - prevOff
    b.movImm(12, 1);
    b.and_(4, 3, 12);
    b.mulImm(4, 4, kBufBytes);
    b.movImm(5, kBufBytes);
    b.sub(5, 5, 4);
    // Clamped neighbour reads from the previous row.
    b.addImm(6, 1, -1);
    b.movImm(12, 0);
    b.max(6, 6, 12);
    b.shlImm(6, 6, 2);
    b.add(6, 6, 4);
    b.ldShared(7, 6, 0);           // left
    b.shlImm(6, 1, 2);
    b.add(6, 6, 4);
    b.ldShared(8, 6, 0);           // mid
    b.addImm(6, 1, 1);
    b.movImm(12, kBlockDim - 1);
    b.min(6, 6, 12);
    b.shlImm(6, 6, 2);
    b.add(6, 6, 4);
    b.ldShared(9, 6, 0);           // right
    b.min(10, 7, 8);
    b.min(10, 10, 9);
    // data = DATA[r*n + gid]
    b.mulImm(11, 3, n);
    b.add(11, 11, 2);
    b.shlImm(11, 11, 2);
    b.ldGlobal(13, 11, kData);
    b.add(10, 10, 13);
    b.shlImm(6, 1, 2);
    b.add(6, 6, 5);
    b.stShared(6, 10, 0);
    b.bar();
    b.addImm(3, 3, 1);
    b.setpImm(0, CmpOp::Lt, 3, kRows);
    b.braIf("rowloop", 0, "rowdone");
    b.label("rowdone");

    // kRows is even, so the final row sits in buffer 0.
    b.shlImm(6, 1, 2);
    b.ldShared(10, 6, 0);
    b.shlImm(11, 2, 2);
    b.stGlobal(11, 10, kOut);
    b.exit();
    return b.build();
}

} // namespace

KernelInfo
PathfinderWorkload::doBuild(MemoryImage &mem, const WorkloadParams &params,
                            std::vector<MemRange> &outputs) const
{
    const int grid = std::max(1, static_cast<int>(48 * params.scale));
    const int n = kBlockDim * grid;

    Rng rng(params.seed * 314606869 + 29);
    for (int i = 0; i < n; ++i)
        mem.write32(kRow0 + 4ull * i,
                    static_cast<std::uint32_t>(rng.nextBounded(64)));
    for (int r = 0; r < kRows; ++r)
        for (int i = 0; i < n; ++i)
            mem.write32(kData + 4ull * (static_cast<Addr>(r) * n + i),
                        static_cast<std::uint32_t>(rng.nextBounded(64)));

    outputs.push_back({kOut, 4ull * n});

    KernelInfo kernel;
    kernel.name = "pathfinder";
    kernel.program = buildProgram(n);
    kernel.gridDim = grid;
    kernel.blockDim = kBlockDim;
    kernel.regsPerThread = 16;
    kernel.smemPerBlock = 2 * kBufBytes;
    return kernel;
}

} // namespace cawa
