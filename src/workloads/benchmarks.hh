/**
 * @file
 * The twelve benchmark workloads of Table 2. See each .cc for the
 * kernel design and the paper behaviour it reproduces.
 */

#ifndef CAWA_WORKLOADS_BENCHMARKS_HH
#define CAWA_WORKLOADS_BENCHMARKS_HH

#include "workloads/workload.hh"

namespace cawa
{

/**
 * bfs — frontier expansion over an irregular graph. Imbalanced
 * per-node degree (power-law) plus a visited/not-visited branch per
 * neighbor: the paper's running example of workload imbalance and
 * diverging branch behaviour (Sections 2.2.1-2.2.2, Figures 2-4, 8,
 * 12). WorkloadParams::bfsBalanced selects the balanced-tree input
 * of Fig 2(b).
 */
class BfsWorkload : public Workload
{
  public:
    std::string name() const override { return "bfs"; }
    bool sensitive() const override { return true; }
    std::string dataSet() const override { return "65536 nodes"; }

  protected:
    KernelInfo doBuild(MemoryImage &mem, const WorkloadParams &params,
                       std::vector<MemRange> &outputs) const override;
};

/**
 * kmeans — nearest-centroid assignment. Per-warp feature working set
 * (dim cache lines) re-read once per centroid: thrashes the 16KB L1
 * when many warps are active; schedulers that shrink the active warp
 * set (GTO/gCAWS) and CACP's retention recover the reuse (the
 * paper's 3.13x headline case).
 */
class KmeansWorkload : public Workload
{
  public:
    std::string name() const override { return "kmeans"; }
    bool sensitive() const override { return true; }
    std::string dataSet() const override { return "494020 nodes"; }

  protected:
    KernelInfo doBuild(MemoryImage &mem, const WorkloadParams &params,
                       std::vector<MemRange> &outputs) const override;
};

/**
 * b+tree — parallel key lookups over a 4-level 16-ary search tree.
 * Upper levels have strong inter-warp reuse (the paper's reason CAWA
 * slightly degrades b+tree); leaf accesses are irregular; the
 * within-node scan loop has data-dependent trip counts.
 */
class BtreeWorkload : public Workload
{
  public:
    std::string name() const override { return "b+tree"; }
    bool sensitive() const override { return true; }
    std::string dataSet() const override { return "1 million nodes"; }

  protected:
    KernelInfo doBuild(MemoryImage &mem, const WorkloadParams &params,
                       std::vector<MemRange> &outputs) const override;
};

/**
 * heartwall — large-kernel windowed image correlation with a
 * data-dependent refinement loop (region-dependent workload
 * imbalance). The big static program makes CPL training relatively
 * cheap compared to the oracle-profiled CAWS (Fig 13's discussion).
 */
class HeartwallWorkload : public Workload
{
  public:
    std::string name() const override { return "heartwall"; }
    bool sensitive() const override { return true; }
    std::string dataSet() const override
    {
        return "656x744 grey scale AVI";
    }

  protected:
    KernelInfo doBuild(MemoryImage &mem, const WorkloadParams &params,
                       std::vector<MemRange> &outputs) const override;
};

/**
 * needle — Needleman-Wunsch wavefront over a shared-memory tile, one
 * warp per block and a barrier per anti-diagonal: the low-warp-level-
 * parallelism application for which CPL accuracy is trivially 100%
 * (Fig 11 footnote).
 */
class NeedleWorkload : public Workload
{
  public:
    std::string name() const override { return "needle"; }
    bool sensitive() const override { return true; }
    std::string dataSet() const override { return "1024x1024 nodes"; }

  protected:
    KernelInfo doBuild(MemoryImage &mem, const WorkloadParams &params,
                       std::vector<MemRange> &outputs) const override;
};

/**
 * srad_1 — 2D diffusion stencil with boundary branches and a
 * region-biased data-dependent refinement loop: the highest warp
 * execution-time disparity of the suite (Fig 1's ~70%).
 */
class SradWorkload : public Workload
{
  public:
    std::string name() const override { return "srad_1"; }
    bool sensitive() const override { return true; }
    std::string dataSet() const override { return "502x458 nodes"; }

  protected:
    KernelInfo doBuild(MemoryImage &mem, const WorkloadParams &params,
                       std::vector<MemRange> &outputs) const override;
};

/**
 * streamcluster — point-to-median distance evaluation. The "small"
 * configuration (32-dim) is cache sensitive; "mid" (64-dim) streams
 * a working set far beyond the L1 and is classified Non-sens
 * (Table 2). High inter-warp spatial locality on the shared median
 * array (the paper's reason CACP slightly hurts strcltr_small).
 */
class StreamclusterWorkload : public Workload
{
  public:
    explicit StreamclusterWorkload(bool mid) : mid_(mid) {}

    std::string name() const override
    {
        return mid_ ? "strcltr_mid" : "strcltr_small";
    }
    bool sensitive() const override { return !mid_; }
    std::string dataSet() const override
    {
        return mid_ ? "64x8192 nodes" : "32x4096 nodes";
    }

  protected:
    KernelInfo doBuild(MemoryImage &mem, const WorkloadParams &params,
                       std::vector<MemRange> &outputs) const override;

  private:
    bool mid_;
};

/**
 * backprop — feed-forward layer evaluation: perfectly balanced,
 * coalesced streaming weights plus broadcast activations (Non-sens).
 */
class BackpropWorkload : public Workload
{
  public:
    std::string name() const override { return "backprop"; }
    bool sensitive() const override { return false; }
    std::string dataSet() const override { return "65536 nodes"; }

  protected:
    KernelInfo doBuild(MemoryImage &mem, const WorkloadParams &params,
                       std::vector<MemRange> &outputs) const override;
};

/**
 * particle — particle-filter likelihood evaluation: uniform per-
 * particle work over broadcast observations (Non-sens).
 */
class ParticleWorkload : public Workload
{
  public:
    std::string name() const override { return "particle"; }
    bool sensitive() const override { return false; }
    std::string dataSet() const override { return "128x128x10 nodes"; }

  protected:
    KernelInfo doBuild(MemoryImage &mem, const WorkloadParams &params,
                       std::vector<MemRange> &outputs) const override;
};

/**
 * pathfinder — dynamic-programming row sweep through shared memory
 * with two barriers per row: regular and balanced (Non-sens).
 */
class PathfinderWorkload : public Workload
{
  public:
    std::string name() const override { return "pathfinder"; }
    bool sensitive() const override { return false; }
    std::string dataSet() const override { return "100000 nodes"; }

  protected:
    KernelInfo doBuild(MemoryImage &mem, const WorkloadParams &params,
                       std::vector<MemRange> &outputs) const override;
};

/**
 * tpacf — angular correlation histogramming: broadcast data points,
 * a branch ladder for binning whose outcomes are uniformly
 * distributed across warps (balanced divergence, Non-sens).
 */
class TpacfWorkload : public Workload
{
  public:
    std::string name() const override { return "tpacf"; }
    bool sensitive() const override { return false; }
    std::string dataSet() const override { return "487x100 nodes"; }

  protected:
    KernelInfo doBuild(MemoryImage &mem, const WorkloadParams &params,
                       std::vector<MemRange> &outputs) const override;
};

} // namespace cawa

#endif // CAWA_WORKLOADS_BENCHMARKS_HH
