/**
 * @file
 * particle — particle-filter likelihood evaluation.
 *
 * Thread t owns one particle: its state evolves through an unrolled
 * chain of SFU steps while the likelihood accumulates squared
 * differences against broadcast observations. Uniform per-particle
 * work, no data-dependent control flow: a balanced, moderately
 * compute-bound Non-sens workload.
 */

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "workloads/benchmarks.hh"

namespace cawa
{

namespace
{

constexpr Addr kPx = 0x01000000;
constexpr Addr kObs = 0x02000000;
constexpr Addr kWt = 0x03000000;

constexpr int kObservations = 10;

Program
buildProgram()
{
    // r1=tid r2=state r3=weight r4=obs r5=addr r6=diff
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.shlImm(5, 1, 2);
    b.ldGlobal(2, 5, kPx);
    b.movImm(3, 0);
    for (int o = 0; o < kObservations; ++o) {
        b.movImm(5, 4ll * o);
        b.ldGlobal(4, 5, kObs);    // broadcast OBS[o]
        b.sub(6, 2, 4);
        b.mad(3, 6, 6, 3);
        b.sfu(2, 2);               // evolve the particle state
        b.movImm(5, 0xffff);
        b.and_(2, 2, 5);
    }
    b.shlImm(5, 1, 2);
    b.stGlobal(5, 3, kWt);
    b.exit();
    return b.build();
}

} // namespace

KernelInfo
ParticleWorkload::doBuild(MemoryImage &mem, const WorkloadParams &params,
                          std::vector<MemRange> &outputs) const
{
    const int block_dim = 256;
    const int grid = std::max(1, static_cast<int>(48 * params.scale));
    const int n = block_dim * grid;

    Rng rng(params.seed * 15487469 + 13);
    for (int t = 0; t < n; ++t)
        mem.write32(kPx + 4ull * t,
                    static_cast<std::uint32_t>(rng.nextBounded(0x10000)));
    for (int o = 0; o < kObservations; ++o)
        mem.write32(kObs + 4ull * o,
                    static_cast<std::uint32_t>(rng.nextBounded(0x10000)));

    outputs.push_back({kWt, 4ull * n});

    KernelInfo kernel;
    kernel.name = "particle";
    kernel.program = buildProgram();
    kernel.gridDim = grid;
    kernel.blockDim = block_dim;
    kernel.regsPerThread = 16;
    kernel.smemPerBlock = 0;
    return kernel;
}

} // namespace cawa
