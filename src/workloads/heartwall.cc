/**
 * @file
 * heartwall — windowed image correlation with data-dependent
 * refinement: the suite's "large kernel" (the 16 window rows are
 * fully unrolled into a long straight-line body).
 *
 * Thread t samples the frame at (row = t/W' stride 8, col = t mod W'),
 * accumulates a 16x4 window of multiply-adds, then runs a refinement
 * loop whose trip count comes from a per-row table plus one
 * data-dependent bit: warps on different rows get different amounts
 * of work (inter-warp imbalance) while lanes within a warp mostly
 * agree (mild divergence) — heartwall's Sens profile.
 */

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "workloads/benchmarks.hh"

namespace cawa
{

namespace
{

constexpr Addr kFrame = 0x01000000;
constexpr Addr kRext = 0x02000000;
constexpr Addr kOut = 0x03000000;

constexpr int kWidth = 512;      ///< padded frame width (words)
constexpr int kWinRows = 16;
constexpr int kWinCols = 4;

Program
buildProgram()
{
    // r1=gid r2=px r3=py r4=acc r5=addr r6=val r7=extra r8=mask
    // r9=scratch
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.movImm(8, 255);
    b.and_(2, 1, 8);               // px = gid & 255
    b.shrImm(3, 1, 8);             // py = gid >> 8

    b.movImm(4, 0);
    // Unrolled window: rows at vertical stride 8, two samples per
    // row, each followed by the correlation arithmetic (the "large
    // kernel" body dominated by computation).
    for (int wy = 0; wy < kWinRows; ++wy) {
        for (int wx = 0; wx < 2; ++wx) {
            // addr = ((py*2 + wy) * W + px + wx*8) * 4
            b.mulImm(5, 3, 2 * kWidth * 4);
            b.shlImm(9, 2, 2);
            b.add(5, 5, 9);
            b.ldGlobal(6, 5,
                       kFrame + 4ll * (wy * kWidth + wx * 8));
            b.mulImm(9, 6, 3 + wx);     // template coefficient
            b.mad(4, 6, 9, 4);          // correlation accumulate
            b.shrImm(9, 4, 7);          // running normalization
            b.sub(4, 4, 9);
            b.addImm(9, 6, -128);       // mean-removed term
            b.mad(4, 9, 9, 4);
        }
        if (wy % 4 == 3)
            b.sfu(4, 4);
    }

    // extra = REXT[py] + (acc & 1)
    b.shlImm(5, 3, 2);
    b.ldGlobal(7, 5, kRext);
    b.movImm(8, 1);
    b.and_(9, 4, 8);
    b.add(7, 7, 9);

    b.label("refine");
    b.setpImm(0, CmpOp::Le, 7, 0);
    b.braIf("refdone", 0, "refdone");
    b.mulImm(5, 3, 2 * kWidth * 4);
    b.shlImm(9, 2, 2);
    b.add(5, 5, 9);
    b.ldGlobal(6, 5, kFrame);
    b.sfu(6, 6);
    b.add(4, 4, 6);
    b.addImm(7, 7, -1);
    b.bra("refine");
    b.label("refdone");

    b.shlImm(5, 1, 2);
    b.stGlobal(5, 4, kOut);
    b.exit();
    return b.build();
}

} // namespace

KernelInfo
HeartwallWorkload::doBuild(MemoryImage &mem, const WorkloadParams &params,
                           std::vector<MemRange> &outputs) const
{
    const int block_dim = 256;
    const int grid = std::max(1, static_cast<int>(48 * params.scale));
    const int n = block_dim * grid;
    const int rows = n / 256;      // sample rows (gid >> 8)

    Rng rng(params.seed * 15485863 + 11);

    // Frame: enough rows for the deepest window access.
    const int frame_rows = rows * 2 + kWinRows + 1;
    for (int r = 0; r < frame_rows; ++r)
        for (int c = 0; c < kWidth; ++c)
            mem.write32(kFrame + 4ull * (static_cast<Addr>(r) * kWidth +
                                         c),
                        static_cast<std::uint32_t>(rng.nextBounded(256)));

    // Per-row refinement depth: 0..12, differing across warp rows.
    for (int r = 0; r < rows + 1; ++r)
        mem.write32(kRext + 4ull * r,
                    static_cast<std::uint32_t>(rng.nextBounded(13)));

    outputs.push_back({kOut, 4ull * n});

    KernelInfo kernel;
    kernel.name = "heartwall";
    kernel.program = buildProgram();
    kernel.gridDim = grid;
    kernel.blockDim = block_dim;
    kernel.regsPerThread = 16;
    kernel.smemPerBlock = 0;
    return kernel;
}

} // namespace cawa
