/**
 * @file
 * srad_1 — 2D diffusion stencil with data-dependent refinement.
 *
 * Each thread updates one pixel from its four clamped neighbours
 * (branch-free via selp), then runs a refinement loop of
 * `(self >> 4) + (self & 1)` iterations of a serial SFU chain. Pixel
 * values are biased per 32-pixel segment, so each *warp* draws a
 * different refinement depth (0..12) while its lanes mostly agree:
 * strong intra-block warp imbalance — srad_1 shows the largest
 * execution-time disparity in Fig 1 (~70%).
 */

#include "common/rng.hh"
#include "isa/program_builder.hh"
#include "workloads/benchmarks.hh"

namespace cawa
{

namespace
{

constexpr Addr kImg = 0x01000000;
constexpr Addr kOut = 0x02000000;

constexpr int kCols = 256;

Program
buildProgram(int n)
{
    // r1=gid r2=row r3=col r4=self r5/r6=idx scratch r7=N r8=S r9=W
    // r10=E r11=acc r12=extra r13=tmp r14=const
    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.shrImm(2, 1, 8);             // row
    b.movImm(14, kCols - 1);
    b.and_(3, 1, 14);              // col

    b.shlImm(5, 1, 2);
    b.ldGlobal(4, 5, kImg);        // self

    // North: idx = row>0 ? gid-256 : gid
    b.setpImm(0, CmpOp::Gt, 2, 0);
    b.addImm(6, 1, -kCols);
    b.selp(6, 0, 6, 1);
    b.shlImm(6, 6, 2);
    b.ldGlobal(7, 6, kImg);
    // South: idx = row<rows-1 ? gid+256 : gid
    b.setpImm(0, CmpOp::Lt, 2, n / kCols - 1);
    b.addImm(6, 1, kCols);
    b.selp(6, 0, 6, 1);
    b.shlImm(6, 6, 2);
    b.ldGlobal(8, 6, kImg);
    // West: col>0 ? gid-1 : gid
    b.setpImm(0, CmpOp::Gt, 3, 0);
    b.addImm(6, 1, -1);
    b.selp(6, 0, 6, 1);
    b.shlImm(6, 6, 2);
    b.ldGlobal(9, 6, kImg);
    // East: col<cols-1 ? gid+1 : gid
    b.setpImm(0, CmpOp::Lt, 3, kCols - 1);
    b.addImm(6, 1, 1);
    b.selp(6, 0, 6, 1);
    b.shlImm(6, 6, 2);
    b.ldGlobal(10, 6, kImg);

    // Directional derivatives and diffusion coefficient stand-in.
    b.sub(7, 7, 4);
    b.sub(8, 8, 4);
    b.sub(9, 9, 4);
    b.sub(10, 10, 4);
    b.movImm(11, 0);
    b.mad(11, 7, 7, 11);
    b.mad(11, 8, 8, 11);
    b.mad(11, 9, 9, 11);
    b.mad(11, 10, 10, 11);
    b.sfu(11, 11);
    b.movImm(14, 0xffff);
    b.and_(11, 11, 14);
    b.add(11, 11, 4);

    // Refinement: extra = (self >> 4) + (self & 1).
    b.shrImm(12, 4, 4);
    b.movImm(14, 1);
    b.and_(13, 4, 14);
    b.add(12, 12, 13);
    b.label("refine");
    b.setpImm(0, CmpOp::Le, 12, 0);
    b.braIf("refdone", 0, "refdone");
    b.sfu(11, 11);                 // serial SFU chain
    b.sfu(11, 11);
    b.add(11, 11, 4);
    b.addImm(12, 12, -1);
    b.bra("refine");
    b.label("refdone");

    b.shlImm(5, 1, 2);
    b.stGlobal(5, 11, kOut);
    b.exit();
    return b.build();
}

} // namespace

KernelInfo
SradWorkload::doBuild(MemoryImage &mem, const WorkloadParams &params,
                      std::vector<MemRange> &outputs) const
{
    const int block_dim = 256; // one image row per block
    const int grid = std::max(1, static_cast<int>(56 * params.scale));
    const int n = block_dim * grid;

    Rng rng(params.seed * 86028121 + 31);
    // Per-32-pixel-segment bias 0..12 drives per-warp refinement
    // depth; low bits add intra-warp noise.
    std::uint32_t bias = 0;
    for (int i = 0; i < n; ++i) {
        if (i % 32 == 0)
            bias = static_cast<std::uint32_t>(rng.nextBounded(13));
        mem.write32(kImg + 4ull * i,
                    bias * 16 +
                        static_cast<std::uint32_t>(rng.nextBounded(16)));
    }

    outputs.push_back({kOut, 4ull * n});

    KernelInfo kernel;
    kernel.name = "srad_1";
    kernel.program = buildProgram(n);
    kernel.gridDim = grid;
    kernel.blockDim = block_dim;
    kernel.regsPerThread = 16;
    kernel.smemPerBlock = 0;
    return kernel;
}

} // namespace cawa
