#include "workloads/sweep_jobs.hh"

#include <memory>
#include <sstream>

#include "workloads/registry.hh"

namespace cawa
{

std::string
workloadJobName(const WorkloadJobSpec &spec)
{
    std::ostringstream oss;
    oss << spec.workload << '.' << schedulerKindName(spec.cfg.scheduler)
        << '.' << cachePolicyKindName(spec.cfg.l1Policy) << ".seed"
        << spec.params.seed << ".scale" << spec.params.scale;
    if (spec.params.bfsBalanced)
        oss << ".balanced";
    return oss.str();
}

SweepJob
makeWorkloadJob(const WorkloadJobSpec &spec)
{
    SweepJob job;
    job.name = workloadJobName(spec);
    job.cfg = spec.cfg;

    // The workload built for the timing run is kept alive in this
    // shared holder so verify() can compare against the reference it
    // remembered; a job executes on exactly one worker, so the holder
    // is never accessed concurrently.
    auto holder = std::make_shared<std::unique_ptr<Workload>>();
    const std::string name = spec.workload;
    const WorkloadParams params = spec.params;

    job.build = [holder, name, params](MemoryImage &mem) {
        *holder = makeWorkload(name);
        return (*holder)->build(mem, params);
    };
    // The CAWS-oracle profiling pass needs identical inputs in a
    // scratch image, built by a throwaway workload instance.
    job.buildProfile = [name, params](MemoryImage &mem) {
        return makeWorkload(name)->build(mem, params);
    };
    job.verify = [holder](const MemoryImage &mem) {
        return *holder && (*holder)->verify(mem);
    };
    return job;
}

std::vector<SweepJob>
makeWorkloadJobs(const std::vector<WorkloadJobSpec> &specs)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(specs.size());
    for (const auto &spec : specs)
        jobs.push_back(makeWorkloadJob(spec));
    return jobs;
}

} // namespace cawa
