#include "workloads/sweep_jobs.hh"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <sstream>

#include "common/sim_error.hh"
#include "common/subprocess.hh"
#include "sim/supervisor.hh"
#include "workloads/registry.hh"

namespace cawa
{

std::string
workloadJobName(const WorkloadJobSpec &spec)
{
    std::ostringstream oss;
    oss << spec.workload << '.' << schedulerKindName(spec.cfg.scheduler)
        << '.' << cachePolicyKindName(spec.cfg.l1Policy) << ".seed"
        << spec.params.seed << ".scale" << spec.params.scale;
    if (spec.params.bfsBalanced)
        oss << ".balanced";
    return oss.str();
}

SweepJob
makeWorkloadJob(const WorkloadJobSpec &spec)
{
    SweepJob job;
    job.name = workloadJobName(spec);
    job.cfg = spec.cfg;

    // The workload built for the timing run is kept alive in this
    // shared holder so verify() can compare against the reference it
    // remembered; a job executes on exactly one worker, so the holder
    // is never accessed concurrently.
    auto holder = std::make_shared<std::unique_ptr<Workload>>();
    const std::string name = spec.workload;
    const WorkloadParams params = spec.params;

    job.build = [holder, name, params](MemoryImage &mem) {
        *holder = makeWorkload(name);
        return (*holder)->build(mem, params);
    };
    // The CAWS-oracle profiling pass needs identical inputs in a
    // scratch image, built by a throwaway workload instance.
    job.buildProfile = [name, params](MemoryImage &mem) {
        return makeWorkload(name)->build(mem, params);
    };
    job.verify = [holder](const MemoryImage &mem) {
        return *holder && (*holder)->verify(mem);
    };
    return job;
}

std::vector<SweepJob>
makeWorkloadJobs(const std::vector<WorkloadJobSpec> &specs)
{
    std::vector<SweepJob> jobs;
    jobs.reserve(specs.size());
    for (const auto &spec : specs)
        jobs.push_back(makeWorkloadJob(spec));
    return jobs;
}

SchedulerKind
schedulerKindFromName(const std::string &name)
{
    for (SchedulerKind kind :
         {SchedulerKind::Lrr, SchedulerKind::Gto, SchedulerKind::TwoLevel,
          SchedulerKind::CawsOracle, SchedulerKind::Gcaws})
        if (name == schedulerKindName(kind))
            return kind;
    throw SimError(SimErrorKind::Config,
                   "unknown scheduler '" + name + "'");
}

CachePolicyKind
cachePolicyKindFromName(const std::string &name)
{
    for (CachePolicyKind kind :
         {CachePolicyKind::Lru, CachePolicyKind::Srrip,
          CachePolicyKind::Ship, CachePolicyKind::Cacp})
        if (name == cachePolicyKindName(kind))
            return kind;
    throw SimError(SimErrorKind::Config,
                   "unknown cache policy '" + name + "'");
}

WorkloadJobSpec
workloadSpecFromJson(const JsonValue &doc)
{
    WorkloadJobSpec spec;
    spec.workload = doc.at("workload").asString();
    const auto known = allWorkloadNames();
    if (std::find(known.begin(), known.end(), spec.workload) ==
        known.end())
        throw SimError(SimErrorKind::Config,
                       "unknown workload '" + spec.workload + "'");
    spec.cfg = GpuConfig::fermiGtx480();
    spec.cfg.scheduler =
        schedulerKindFromName(doc.at("scheduler").asString());
    spec.cfg.l1Policy =
        cachePolicyKindFromName(doc.at("policy").asString());
    spec.params.seed = doc.at("seed").asU64();
    spec.params.scale = doc.at("scale").asDouble();
    if (!(spec.params.scale > 0.0))
        throw SimError(SimErrorKind::Config,
                       "workload scale must be > 0");
    return spec;
}

std::string
workerSpecJson(const WorkloadJobSpec &spec, const SweepJob &job,
               int jobAttempts, int attempt, double heartbeatSec)
{
    std::string out = "{\"workload\":";
    out += frameJsonQuote(spec.workload);
    out += ",\"scheduler\":";
    out += frameJsonQuote(schedulerKindName(job.cfg.scheduler));
    out += ",\"policy\":";
    out += frameJsonQuote(cachePolicyKindName(job.cfg.l1Policy));
    out += ",\"seed\":" + std::to_string(spec.params.seed);
    out += ",\"scale\":" + std::to_string(spec.params.scale);
    out += ",\"jobTimeout\":" + std::to_string(job.cfg.wallClockLimitSec);
    out += ",\"checkpointPath\":";
    out += frameJsonQuote(job.cfg.checkpointPath);
    out += ",\"checkpointInterval\":" +
           std::to_string(job.cfg.checkpointInterval);
    out += ",\"resume\":";
    out += frameJsonQuote(job.resumeFromCheckpoint);
    out += ",\"faultKillSignal\":" +
           std::to_string(job.cfg.faults.workerKillSignal);
    out += ",\"faultStall\":";
    out += job.cfg.faults.workerStallHeartbeat ? "true" : "false";
    out += ",\"faultExitCode\":" +
           std::to_string(job.cfg.faults.workerExitCode);
    out += ",\"faultCycle\":" +
           std::to_string(job.cfg.faults.workerFaultCycle);
    out += ",\"jobAttempts\":" + std::to_string(jobAttempts);
    out += ",\"attempt\":" + std::to_string(attempt);
    out += ",\"heartbeatSec\":" + std::to_string(heartbeatSec);
    out += "}";
    return out;
}

WorkerSpec
workerSpecFromJson(const JsonValue &doc)
{
    WorkerSpec ws;
    ws.job = makeWorkloadJob(workloadSpecFromJson(doc));
    ws.job.cfg.wallClockLimitSec = doc.at("jobTimeout").asDouble();
    ws.job.cfg.checkpointPath = doc.at("checkpointPath").asString();
    ws.job.cfg.checkpointInterval =
        doc.at("checkpointInterval").asU64();
    ws.job.resumeFromCheckpoint = doc.at("resume").asString();
    ws.job.cfg.faults.workerKillSignal =
        static_cast<int>(doc.at("faultKillSignal").asI64());
    ws.job.cfg.faults.workerStallHeartbeat =
        doc.at("faultStall").asBool();
    ws.job.cfg.faults.workerExitCode =
        static_cast<int>(doc.at("faultExitCode").asI64());
    ws.job.cfg.faults.workerFaultCycle = doc.at("faultCycle").asI64();
    ws.jobAttempts = static_cast<int>(doc.at("jobAttempts").asI64());
    ws.attempt = static_cast<int>(doc.at("attempt").asI64());
    ws.heartbeatSec = doc.at("heartbeatSec").asDouble();
    return ws;
}

int
runWorkerModeFromFds(int inFd, int outFd, const char *toolName)
{
    std::string payload;
    if (!readFrameBlocking(inFd, payload)) {
        std::fprintf(stderr,
                     "%s: no job spec on the input fd (this "
                     "entrypoint is internal to the supervisor)\n",
                     toolName);
        return 2;
    }
    try {
        const WorkerSpec ws = workerSpecFromJson(parseJson(payload));
        return runSweepWorker(ws.job, ws.jobAttempts, outFd,
                              ws.heartbeatSec, ws.attempt);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: bad job spec: %s\n", toolName,
                     e.what());
        return 2;
    }
}

} // namespace cawa
