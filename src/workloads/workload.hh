/**
 * @file
 * Workload framework: each workload builds a kernel (program + launch
 * geometry) and loads its input data into the global memory image,
 * deterministically from a seed. Verification re-builds the inputs
 * into a fresh image, runs the timing-free functional interpreter and
 * compares the declared output ranges — so the SIMT pipeline is
 * checked against an architecturally-defined reference.
 *
 * The twelve concrete workloads model the behavioural properties the
 * paper attributes to its Rodinia/Parboil benchmarks (Table 2):
 * workload imbalance, branch divergence, memory contention, barrier
 * patterns and kernel size — not the original CUDA source.
 */

#ifndef CAWA_WORKLOADS_WORKLOAD_HH
#define CAWA_WORKLOADS_WORKLOAD_HH

#include <string>
#include <vector>

#include "isa/kernel.hh"
#include "mem/memory_image.hh"

namespace cawa
{

struct WorkloadParams
{
    std::uint64_t seed = 1;
    /** Problem-size multiplier (1.0 = the default laptop scale). */
    double scale = 1.0;
    /** bfs only: balanced input (uniform degree), Fig 2(b). */
    bool bfsBalanced = false;
};

/** A byte range of the global image containing kernel output. */
struct MemRange
{
    Addr base = 0;
    std::uint64_t bytes = 0;
};

class Workload
{
  public:
    virtual ~Workload() = default;

    virtual std::string name() const = 0;

    /** Table 2 category: true = Sens, false = Non-sens. */
    virtual bool sensitive() const = 0;

    /** Table 2 "Data Set" column (at scale 1.0). */
    virtual std::string dataSet() const = 0;

    /**
     * Build the kernel and write its inputs into @p mem. Remembers
     * the parameters and output ranges for later verify().
     */
    KernelInfo build(MemoryImage &mem, const WorkloadParams &params);

    /**
     * Check @p sim_mem (the image after a simulated run) against the
     * functional reference. Requires a prior build().
     */
    bool verify(const MemoryImage &sim_mem) const;

    const std::vector<MemRange> &outputs() const { return outputs_; }

  protected:
    /**
     * Workload-specific construction. Must be deterministic in
     * (params) and must not depend on @p mem's prior content.
     */
    virtual KernelInfo doBuild(MemoryImage &mem,
                               const WorkloadParams &params,
                               std::vector<MemRange> &outputs) const = 0;

  private:
    WorkloadParams params_;
    std::vector<MemRange> outputs_;
    bool built_ = false;
};

} // namespace cawa

#endif // CAWA_WORKLOADS_WORKLOAD_HH
