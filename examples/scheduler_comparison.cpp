/**
 * @file
 * Example: compare the five warp schedulers (RR, GTO, two-level,
 * CAWS-oracle, gCAWS) on any Table 2 workload and print IPC, L1
 * behaviour and warp-disparity statistics.
 *
 * Usage: scheduler_comparison [workload] [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "sim/gpu.hh"
#include "sim/oracle.hh"
#include "workloads/registry.hh"

using namespace cawa;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "bfs";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

    WorkloadParams params;
    params.scale = scale;

    Table table({"scheduler", "cycles", "ipc", "speedup", "l1-hit%",
                 "mpki", "disp-avg%", "cpl-acc%"});

    double base_ipc = 0.0;
    for (SchedulerKind sched :
         {SchedulerKind::Lrr, SchedulerKind::Gto, SchedulerKind::TwoLevel,
          SchedulerKind::CawsOracle, SchedulerKind::Gcaws}) {
        GpuConfig cfg = GpuConfig::fermiGtx480();
        cfg.scheduler = sched;

        auto wl = makeWorkload(name);
        MemoryImage mem;
        const KernelInfo kernel = wl->build(mem, params);

        SimReport report;
        if (sched == SchedulerKind::CawsOracle) {
            auto wl2 = makeWorkload(name);
            MemoryImage profile_mem;
            wl2->build(profile_mem, params);
            report = runWithCawsOracle(cfg, mem, profile_mem, kernel);
        } else {
            report = runKernel(cfg, mem, kernel);
        }
        if (!wl->verify(mem)) {
            std::fprintf(stderr, "verification FAILED for %s\n",
                         report.schedulerName.c_str());
            return 1;
        }
        if (sched == SchedulerKind::Lrr)
            base_ipc = report.ipc();

        table.row()
            .cell(report.schedulerName)
            .cell(report.cycles)
            .cell(report.ipc())
            .cell(report.ipc() / base_ipc)
            .cell(100.0 * report.l1.hitRate(), 1)
            .cell(report.mpki(), 2)
            .cell(100.0 * report.avgDisparity(), 1)
            .cell(100.0 * report.cplAccuracy(), 1);
    }
    table.print(std::cout, "scheduler comparison: " + name +
                               " (scale " + std::to_string(scale) + ")");
    return 0;
}
