/**
 * @file
 * Example: dissect the CPL criticality predictor on one thread block.
 * Prints the per-warp ground truth (execution time, instructions,
 * stall breakdown) next to the final criticality counter and the
 * fraction of samples in which CPL called the warp slow, then the
 * criticality rank of the actually-critical warp over time (the Fig
 * 12 view).
 *
 * Usage: criticality_analysis [workload] [scale] [blockId]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "sim/gpu.hh"
#include "workloads/registry.hh"

using namespace cawa;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "bfs";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;
    const std::int64_t block_id = argc > 3 ? std::atol(argv[3]) : 0;

    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.traceBlockId = block_id;
    cfg.traceSampleInterval = 128;

    auto wl = makeWorkload(name);
    MemoryImage mem;
    WorkloadParams params;
    params.scale = scale;
    const KernelInfo kernel = wl->build(mem, params);
    const SimReport report = runKernel(cfg, mem, kernel);

    const BlockRecord *block = nullptr;
    for (const auto &b : report.blocks)
        if (b.id == static_cast<BlockId>(block_id))
            block = &b;
    if (!block) {
        std::fprintf(stderr, "block %lld not found\n",
                     static_cast<long long>(block_id));
        return 1;
    }

    Table table({"warp", "exec-cycles", "instr", "mem-stall",
                 "sched-wait", "slow-frac%"});
    for (const auto &w : block->warps) {
        table.row()
            .cell(w.warpInBlock)
            .cell(w.execTime())
            .cell(w.instructions)
            .cell(w.memStallCycles)
            .cell(w.schedWaitCycles)
            .cell(block->cplSamples
                      ? 100.0 * w.slowSamples / block->cplSamples
                      : 0.0,
                  1);
    }
    table.print(std::cout, name + " block " + std::to_string(block_id) +
                               " per-warp ground truth vs CPL");

    const int critical = block->criticalWarp();
    std::printf("critical warp: %d (exec %llu cycles), "
                "cplAccuracy(all blocks) = %.1f%%\n\n",
                critical,
                static_cast<unsigned long long>(
                    block->warps[critical].execTime()),
                100.0 * report.cplAccuracy());

    std::printf("rank of critical warp over time "
                "(0 = lowest priority, %zu = highest):\n",
                block->warps.size() - 1);
    for (const auto &sample : report.trace) {
        if (sample.criticality.size() <= static_cast<std::size_t>(
                critical))
            continue;
        int rank = 0;
        for (std::size_t w = 0; w < sample.criticality.size(); ++w)
            if (sample.criticality[w] <
                sample.criticality[critical])
                rank++;
        std::printf("  cycle %-8llu rank %2d  crit %lld\n",
                    static_cast<unsigned long long>(sample.cycle), rank,
                    static_cast<long long>(
                        sample.criticality[critical]));
    }
    return 0;
}
