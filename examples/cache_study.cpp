/**
 * @file
 * Example: L1D policy study — run one workload under every
 * combination of warp scheduler and cache management policy (LRU,
 * SRRIP, SHiP, CACP) and print IPC / hit-rate / MPKI plus the
 * critical-warp cache statistics CACP is designed to improve.
 *
 * Usage: cache_study [workload] [scale]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.hh"
#include "sim/gpu.hh"
#include "workloads/registry.hh"

using namespace cawa;

int
main(int argc, char **argv)
{
    const std::string name = argc > 1 ? argv[1] : "kmeans";
    const double scale = argc > 2 ? std::atof(argv[2]) : 0.5;

    WorkloadParams params;
    params.scale = scale;

    Table table({"scheduler", "policy", "cycles", "ipc", "l1-hit%",
                 "crit-hit%", "mpki", "0-reuse%"});

    for (SchedulerKind sched :
         {SchedulerKind::Lrr, SchedulerKind::Gto, SchedulerKind::Gcaws}) {
        for (CachePolicyKind cache :
             {CachePolicyKind::Lru, CachePolicyKind::Srrip,
              CachePolicyKind::Ship, CachePolicyKind::Cacp}) {
            GpuConfig cfg = GpuConfig::fermiGtx480();
            cfg.scheduler = sched;
            cfg.l1Policy = cache;

            auto wl = makeWorkload(name);
            MemoryImage mem;
            const KernelInfo kernel = wl->build(mem, params);
            const SimReport report = runKernel(cfg, mem, kernel);
            if (!wl->verify(mem)) {
                std::fprintf(stderr, "verification FAILED (%s/%s)\n",
                             report.schedulerName.c_str(),
                             report.cachePolicyName.c_str());
                return 1;
            }
            const double zero_reuse = report.l1.evictions
                ? 100.0 * report.l1.zeroReuseEvictions /
                      report.l1.evictions
                : 0.0;
            table.row()
                .cell(report.schedulerName)
                .cell(report.cachePolicyName)
                .cell(report.cycles)
                .cell(report.ipc())
                .cell(100.0 * report.l1.hitRate(), 1)
                .cell(100.0 * report.l1.criticalHitRate(), 1)
                .cell(report.mpki(), 2)
                .cell(zero_reuse, 1);
        }
    }
    table.print(std::cout,
                "cache policy study: " + name + " (scale " +
                    std::to_string(scale) + ")");
    return 0;
}
