/**
 * @file
 * Quickstart: build a tiny kernel with the ProgramBuilder, run it on
 * the simulated GPU under two schedulers, and print the headline
 * statistics. Start here to learn the public API.
 */

#include <cstdio>

#include "isa/program_builder.hh"
#include "sim/gpu.hh"

using namespace cawa;

namespace
{

/**
 * A vector-scale kernel: OUT[i] = IN[i] * 3 + 7, with a small
 * data-dependent loop thrown in so the schedulers have something to
 * chew on.
 */
KernelInfo
buildKernel(MemoryImage &mem, int grid, int block_dim)
{
    constexpr Addr kIn = 0x100000;
    constexpr Addr kOutBase = 0x200000;

    const int n = grid * block_dim;
    for (int i = 0; i < n; ++i)
        mem.write32(kIn + 4ull * i, static_cast<std::uint32_t>(i * 13));

    ProgramBuilder b;
    b.s2r(1, SpecialReg::GlobalTid);
    b.shlImm(2, 1, 2);             // byte offset
    b.ldGlobal(3, 2, kIn);
    b.mulImm(3, 3, 3);
    b.addImm(3, 3, 7);
    // Loop (gid % 4) extra times to create mild divergence.
    b.movImm(5, 3);
    b.and_(4, 1, 5);
    b.label("loop");
    b.setpImm(0, CmpOp::Le, 4, 0);
    b.braIf("done", 0, "done");
    b.addImm(3, 3, 1);
    b.addImm(4, 4, -1);
    b.bra("loop");
    b.label("done");
    b.stGlobal(2, 3, kOutBase);
    b.exit();

    KernelInfo kernel;
    kernel.name = "quickstart";
    kernel.program = b.build();
    kernel.gridDim = grid;
    kernel.blockDim = block_dim;
    kernel.regsPerThread = 8;
    return kernel;
}

} // namespace

int
main()
{
    for (SchedulerKind sched :
         {SchedulerKind::Lrr, SchedulerKind::Gcaws}) {
        GpuConfig cfg = GpuConfig::fermiGtx480();
        cfg.scheduler = sched;
        if (sched == SchedulerKind::Gcaws)
            cfg.l1Policy = CachePolicyKind::Cacp;

        MemoryImage mem;
        const KernelInfo kernel = buildKernel(mem, /*grid=*/30,
                                              /*block_dim=*/256);
        const SimReport report = runKernel(cfg, mem, kernel);

        std::printf("scheduler=%-6s cache=%-5s cycles=%-8llu ipc=%.3f "
                    "l1-hit=%.2f%% blocks=%zu disparity(avg)=%.1f%%\n",
                    report.schedulerName.c_str(),
                    report.cachePolicyName.c_str(),
                    static_cast<unsigned long long>(report.cycles),
                    report.ipc(), 100.0 * report.l1.hitRate(),
                    report.blocks.size(),
                    100.0 * report.avgDisparity());

        // Spot-check a few results.
        for (int i : {0, 100, 7679}) {
            const auto expected = static_cast<std::uint32_t>(
                static_cast<std::uint32_t>(i) * 13 * 3 + 7 + i % 4);
            const std::uint32_t got = mem.read32(0x200000 + 4ull * i);
            if (got != expected) {
                std::printf("MISMATCH at %d: got %u expected %u\n", i,
                            got, expected);
                return 1;
            }
        }
    }
    std::printf("quickstart OK\n");
    return 0;
}
