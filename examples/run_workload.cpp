/**
 * @file
 * Example: a command-line driver for the simulator — run any Table 2
 * workload (or a kernel assembled from a .s file) under any
 * scheduler / cache-policy combination and print the full report.
 *
 * Usage:
 *   run_workload [options]
 *     --workload NAME     Table 2 benchmark (default bfs); use
 *                         --list to enumerate
 *     --asm FILE          run an assembled kernel instead (grid/block
 *                         via --grid/--block)
 *     --scheduler KIND    rr | gto | 2lvl | caws | gcaws
 *     --cache KIND        lru | srrip | ship | cacp
 *     --scale F           workload problem-size multiplier
 *     --sms N             number of SMs
 *     --critical-ways N   CACP partition size
 *     --dynamic-partition enable UCP-style partition adaptation
 *     --seed N            input generation seed
 *     --grid N --block N  geometry for --asm kernels
 *     --smem BYTES        shared memory per block for --asm kernels
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "isa/assembler.hh"
#include "sim/gpu.hh"
#include "sim/oracle.hh"
#include "workloads/registry.hh"

using namespace cawa;

namespace
{

SchedulerKind
parseScheduler(const std::string &s)
{
    if (s == "rr")
        return SchedulerKind::Lrr;
    if (s == "gto")
        return SchedulerKind::Gto;
    if (s == "2lvl")
        return SchedulerKind::TwoLevel;
    if (s == "caws")
        return SchedulerKind::CawsOracle;
    if (s == "gcaws")
        return SchedulerKind::Gcaws;
    std::fprintf(stderr, "unknown scheduler '%s'\n", s.c_str());
    std::exit(1);
}

CachePolicyKind
parseCache(const std::string &s)
{
    if (s == "lru")
        return CachePolicyKind::Lru;
    if (s == "srrip")
        return CachePolicyKind::Srrip;
    if (s == "ship")
        return CachePolicyKind::Ship;
    if (s == "cacp")
        return CachePolicyKind::Cacp;
    std::fprintf(stderr, "unknown cache policy '%s'\n", s.c_str());
    std::exit(1);
}

void
printReport(const SimReport &r)
{
    std::printf("kernel      %s\n", r.kernelName.c_str());
    std::printf("scheduler   %s\n", r.schedulerName.c_str());
    std::printf("l1-policy   %s\n", r.cachePolicyName.c_str());
    std::printf("cycles      %llu%s\n",
                static_cast<unsigned long long>(r.cycles),
                r.timedOut ? "  (TIMED OUT)" : "");
    std::printf("instructions %llu\n",
                static_cast<unsigned long long>(r.instructions));
    std::printf("ipc         %.4f\n", r.ipc());
    std::printf("l1 accesses %llu  hit-rate %.2f%%  mpki %.2f\n",
                static_cast<unsigned long long>(r.l1.accesses),
                100.0 * r.l1.hitRate(), r.mpki());
    std::printf("l1 critical-warp hit-rate %.2f%%\n",
                100.0 * r.l1.criticalHitRate());
    std::printf("l2 accesses %llu  hit-rate %.2f%%\n",
                static_cast<unsigned long long>(r.l2.accesses),
                100.0 * r.l2.hitRate());
    std::printf("dram reads %llu  writes %llu\n",
                static_cast<unsigned long long>(r.dramReads),
                static_cast<unsigned long long>(r.dramWrites));
    std::printf("blocks      %zu\n", r.blocks.size());
    std::printf("disparity   avg %.1f%%  max %.1f%%\n",
                100.0 * r.avgDisparity(), 100.0 * r.maxDisparity());
    std::printf("cpl-accuracy %.1f%%\n", 100.0 * r.cplAccuracy());
    std::printf("mem-stall    %.1f%% of warp time\n",
                100.0 * r.memStallFraction());
}

} // namespace

int
main(int argc, char **argv)
{
    std::string workload = "bfs";
    std::string asm_file;
    GpuConfig cfg = GpuConfig::fermiGtx480();
    WorkloadParams params;
    params.scale = 0.5;
    int grid = 8;
    int block = 256;
    int smem = 0;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", arg.c_str());
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--workload") {
            workload = next();
        } else if (arg == "--asm") {
            asm_file = next();
        } else if (arg == "--scheduler") {
            cfg.scheduler = parseScheduler(next());
        } else if (arg == "--cache") {
            cfg.l1Policy = parseCache(next());
        } else if (arg == "--scale") {
            params.scale = std::atof(next().c_str());
        } else if (arg == "--sms") {
            cfg.numSms = std::atoi(next().c_str());
        } else if (arg == "--critical-ways") {
            cfg.cacp.criticalWays = std::atoi(next().c_str());
        } else if (arg == "--dynamic-partition") {
            cfg.cacp.dynamicPartition = true;
        } else if (arg == "--seed") {
            params.seed = std::strtoull(next().c_str(), nullptr, 0);
        } else if (arg == "--grid") {
            grid = std::atoi(next().c_str());
        } else if (arg == "--block") {
            block = std::atoi(next().c_str());
        } else if (arg == "--smem") {
            smem = std::atoi(next().c_str());
        } else if (arg == "--list") {
            for (const auto &name : allWorkloadNames())
                std::printf("%s\n", name.c_str());
            return 0;
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", arg.c_str());
            return 1;
        }
    }

    MemoryImage mem;
    SimReport report;

    if (!asm_file.empty()) {
        std::ifstream in(asm_file);
        if (!in) {
            std::fprintf(stderr, "cannot open %s\n", asm_file.c_str());
            return 1;
        }
        std::ostringstream src;
        src << in.rdbuf();
        const AssembleResult asm_result = assemble(src.str());
        if (!asm_result.ok()) {
            std::fprintf(stderr, "%s: %s\n", asm_file.c_str(),
                         asm_result.error.c_str());
            return 1;
        }
        KernelInfo kernel;
        kernel.name = asm_file;
        kernel.program = asm_result.program;
        kernel.gridDim = grid;
        kernel.blockDim = block;
        kernel.smemPerBlock = smem;
        report = runKernel(cfg, mem, kernel);
        printReport(report);
        return 0;
    }

    auto wl = makeWorkload(workload);
    const KernelInfo kernel = wl->build(mem, params);
    if (cfg.scheduler == SchedulerKind::CawsOracle) {
        auto wl2 = makeWorkload(workload);
        MemoryImage profile_mem;
        wl2->build(profile_mem, params);
        report = runWithCawsOracle(cfg, mem, profile_mem, kernel);
    } else {
        report = runKernel(cfg, mem, kernel);
    }
    printReport(report);
    std::printf("verification %s\n",
                wl->verify(mem) ? "PASSED" : "FAILED");
    return wl->verify(mem) ? 0 : 1;
}
