; saxpy-style kernel for the run_workload --asm driver:
;   OUT[i] = IN[i] * 3 + i
; Arrays: IN at 0x100000, OUT at 0x200000 (zero-initialized input
; image means OUT[i] = i when run standalone).
    s2r  r1, %gtid
    shl  r2, r1, 2
    ld.global r3, [r2 + 0x100000]
    mul  r3, r3, 3
    add  r3, r3, r1
    st.global [r2 + 0x200000], r3
    exit
