; Block-wide tree reduction through shared memory, demonstrating
; bar.sync and divergence in assembly. Each block sums the 256 values
; IN[block*256 .. +255] into OUT[block].
;   IN  at 0x100000, OUT at 0x300000
; Launch with --block 256 (requires smem >= 1KB; the driver's default
; kernel config reserves none, so this listing doubles as assembler
; documentation; run_workload sets no smem, so use small grids).
    s2r  r1, %tid            ; t
    s2r  r2, %gtid
    shl  r3, r2, 2
    ld.global r4, [r3 + 0x100000]
    shl  r5, r1, 2
    st.shared [r5], r4       ; sh[t] = IN[gtid]
    bar
    mov  r6, 128             ; stride
loop:
    setp.le p0, r6, 0
    @p0 bra done, done
    setp.ge p1, r1, r6       ; threads >= stride idle
    @p1 bra skip, skip
    add  r7, r1, r6          ; partner = t + stride
    shl  r8, r7, 2
    ld.shared r9, [r8]
    ld.shared r10, [r5]
    add  r10, r10, r9
    st.shared [r5], r10
skip:
    bar
    shr  r6, r6, 1
    bra  loop
done:
    setp.ne p2, r1, 0        ; only thread 0 writes the result
    @p2 bra out, out
    ld.shared r11, [r5]
    s2r  r12, %ctaid
    shl  r12, r12, 2
    st.global [r12 + 0x300000], r11
out:
    exit
