/**
 * @file
 * Figure 15: the fraction of critical-warp cache lines evicted from
 * the L1D without any reuse, baseline RR vs full CAWA. Paper: 44.3%
 * of critical-warp lines see zero reuse in the baseline; CAWA's
 * explicit partitioning reduces the interference substantially.
 */

#include "harness.hh"

using namespace cawa;

namespace
{

double
zeroReuseCriticalFraction(const SimReport &r)
{
    const auto &s = r.l1;
    return s.criticalFills
        ? 100.0 * s.zeroReuseCriticalEvictions / s.criticalFills
        : 0.0;
}

} // namespace

int
main()
{
    Table t({"benchmark", "baseline-zero-reuse%", "cawa-zero-reuse%"});
    double base_sum = 0.0;
    double cawa_sum = 0.0;
    int n = 0;
    for (const auto &name : sensitiveWorkloadNames()) {
        const SimReport rr =
            bench::run(name, bench::schedulerConfig(SchedulerKind::Lrr));
        const SimReport cawa = bench::run(name, bench::cawaConfig());
        const double b = zeroReuseCriticalFraction(rr);
        const double c = zeroReuseCriticalFraction(cawa);
        t.row().cell(name).cell(b, 1).cell(c, 1);
        base_sum += b;
        cawa_sum += c;
        n++;
    }
    t.row()
        .cell("average")
        .cell(base_sum / n, 1)
        .cell(cawa_sum / n, 1);
    bench::emit(t, "Fig 15: critical-warp L1D lines evicted with zero "
                   "reuse (paper: baseline ~44.3%, CAWA much lower)");
    return 0;
}
