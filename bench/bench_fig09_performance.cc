/**
 * @file
 * Figure 9: IPC of the 2-level, GTO and CAWA (gCAWS + CACP)
 * configurations normalized to the baseline RR scheduler, for all
 * twelve benchmarks plus the Sens-class and overall averages.
 *
 * Paper shape: CAWA best on the Sens class (avg ~+23%, kmeans up to
 * 3.13x), GTO second (~+16%), 2-level roughly neutral-to-negative
 * (~-2%); Non-sens applications are largely insensitive.
 */

#include "harness.hh"

using namespace cawa;

int
main()
{
    bench::prefetch(bench::matrix(
        allWorkloadNames(),
        {bench::schedulerConfig(SchedulerKind::Lrr),
         bench::schedulerConfig(SchedulerKind::TwoLevel),
         bench::schedulerConfig(SchedulerKind::Gto),
         bench::cawaConfig()}));

    Table t({"benchmark", "class", "rr-ipc", "2lvl", "gto", "cawa",
             "paper-note"});
    double sens_sum[3] = {};
    int sens_n = 0;
    double all_sum[3] = {};
    int all_n = 0;

    for (const auto &name : allWorkloadNames()) {
        const bool sens = makeWorkload(name)->sensitive();
        const SimReport rr =
            bench::run(name, bench::schedulerConfig(SchedulerKind::Lrr));
        const SimReport lvl = bench::run(
            name, bench::schedulerConfig(SchedulerKind::TwoLevel));
        const SimReport gto =
            bench::run(name, bench::schedulerConfig(SchedulerKind::Gto));
        const SimReport cawa = bench::run(name, bench::cawaConfig());

        const double s2 = lvl.ipc() / rr.ipc();
        const double sg = gto.ipc() / rr.ipc();
        const double sc = cawa.ipc() / rr.ipc();
        t.row()
            .cell(name)
            .cell(sens ? "Sens" : "Non-sens")
            .cell(rr.ipc(), 3)
            .cell(s2, 3)
            .cell(sg, 3)
            .cell(sc, 3)
            .cell(name == "kmeans" ? "paper: CAWA 3.13x" : "");
        if (sens) {
            sens_sum[0] += s2;
            sens_sum[1] += sg;
            sens_sum[2] += sc;
            sens_n++;
        }
        all_sum[0] += s2;
        all_sum[1] += sg;
        all_sum[2] += sc;
        all_n++;
    }
    t.row()
        .cell("avg(Sens)")
        .cell("")
        .cell("")
        .cell(sens_sum[0] / sens_n, 3)
        .cell(sens_sum[1] / sens_n, 3)
        .cell(sens_sum[2] / sens_n, 3)
        .cell("paper: 0.98 / 1.16 / 1.23");
    t.row()
        .cell("avg(all)")
        .cell("")
        .cell("")
        .cell(all_sum[0] / all_n, 3)
        .cell(all_sum[1] / all_n, 3)
        .cell(all_sum[2] / all_n, 3)
        .cell("paper: CAWA ~1.092 overall");
    bench::emit(t, "Fig 9: performance normalized to RR");
    return 0;
}
