/**
 * @file
 * Figure 14: L1D hit rate received by critical-warp memory requests,
 * normalized to the RR baseline, under GTO, 2-level and CAWA. Paper:
 * CAWA improves the critical-warp hit rate by 2.46x on average and
 * up to 7.22x for kmeans; criticality-oblivious schedulers are less
 * consistent.
 */

#include "harness.hh"

using namespace cawa;

int
main()
{
    Table t({"benchmark", "rr-crit-hit%", "2lvl(x)", "gto(x)",
             "cawa(x)"});
    double sum = 0.0;
    int n = 0;
    for (const auto &name : sensitiveWorkloadNames()) {
        const SimReport rr =
            bench::run(name, bench::schedulerConfig(SchedulerKind::Lrr));
        const SimReport lvl = bench::run(
            name, bench::schedulerConfig(SchedulerKind::TwoLevel));
        const SimReport gto =
            bench::run(name, bench::schedulerConfig(SchedulerKind::Gto));
        const SimReport cawa = bench::run(name, bench::cawaConfig());
        const double base = rr.l1.criticalHitRate();
        auto norm = [base](double v) {
            return base > 0.0 ? v / base : 0.0;
        };
        t.row()
            .cell(name)
            .cell(100.0 * base, 1)
            .cell(norm(lvl.l1.criticalHitRate()), 2)
            .cell(norm(gto.l1.criticalHitRate()), 2)
            .cell(norm(cawa.l1.criticalHitRate()), 2);
        if (base > 0.0) {
            sum += norm(cawa.l1.criticalHitRate());
            n++;
        }
    }
    t.row().cell("average(cawa)").cell("").cell("").cell("")
        .cell(n ? sum / n : 0.0, 2);
    bench::emit(t, "Fig 14: critical-warp L1D hit rate normalized to "
                   "RR (paper: CAWA avg 2.46x, kmeans 7.22x)");
    return 0;
}
