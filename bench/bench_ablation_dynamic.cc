/**
 * @file
 * Ablation: static 8/16 CACP partition vs the dynamic UCP-style
 * partition tuning extension (Section 3.3 suggests integrating a
 * design similar to utility-based cache partitioning to size the
 * critical partition at runtime).
 */

#include "harness.hh"

using namespace cawa;

int
main()
{
    Table t({"benchmark", "static-8/16", "dynamic", "delta%"});
    for (const auto &name : sensitiveWorkloadNames()) {
        const SimReport rr =
            bench::run(name, bench::schedulerConfig(SchedulerKind::Lrr));
        GpuConfig stat = bench::cawaConfig();
        GpuConfig dyn = bench::cawaConfig();
        dyn.cacp.dynamicPartition = true;
        const double s = bench::run(name, stat).ipc() / rr.ipc();
        const double d = bench::run(name, dyn).ipc() / rr.ipc();
        t.row()
            .cell(name)
            .cell(s, 3)
            .cell(d, 3)
            .cell(100.0 * (d / s - 1.0), 1);
    }
    bench::emit(t, "Ablation: static vs dynamic CACP partition");
    return 0;
}
