/**
 * @file
 * Figure 10: L1D MPKI under the 2-level, GTO and CAWA configurations
 * (baseline RR for reference). Paper shape: CAWA gives the largest
 * overall miss reduction (kmeans's miss rate falls by ~26%), while a
 * few applications (heartwall, strcltr_small) trade slightly higher
 * MPKI for criticality-friendly retention yet still gain IPC.
 */

#include "harness.hh"

using namespace cawa;

int
main()
{
    bench::prefetch(bench::matrix(
        allWorkloadNames(),
        {bench::schedulerConfig(SchedulerKind::Lrr),
         bench::schedulerConfig(SchedulerKind::TwoLevel),
         bench::schedulerConfig(SchedulerKind::Gto),
         bench::cawaConfig()}));

    Table t({"benchmark", "rr", "2lvl", "gto", "cawa", "cawa-vs-rr%"});
    for (const auto &name : allWorkloadNames()) {
        const SimReport rr =
            bench::run(name, bench::schedulerConfig(SchedulerKind::Lrr));
        const SimReport lvl = bench::run(
            name, bench::schedulerConfig(SchedulerKind::TwoLevel));
        const SimReport gto =
            bench::run(name, bench::schedulerConfig(SchedulerKind::Gto));
        const SimReport cawa = bench::run(name, bench::cawaConfig());
        t.row()
            .cell(name)
            .cell(rr.mpki(), 2)
            .cell(lvl.mpki(), 2)
            .cell(gto.mpki(), 2)
            .cell(cawa.mpki(), 2)
            .cell(rr.mpki() > 0.0
                      ? 100.0 * (cawa.mpki() - rr.mpki()) / rr.mpki()
                      : 0.0,
                  1);
    }
    bench::emit(t, "Fig 10: L1D MPKI (paper: CAWA reduces misses most; "
                   "kmeans ~-26%)");
    return 0;
}
