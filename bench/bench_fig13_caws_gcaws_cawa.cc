/**
 * @file
 * Figure 13: speedup over the RR baseline for CAWS (oracle warp
 * criticality from a profiling pass), CAWA_gCAWS (runtime CPL,
 * scheduler only) and full CAWA (gCAWS + CACP).
 *
 * Paper shape: the oracle CAWS wins on small kernels (bfs, b+tree,
 * needle) where CPL's training time is relatively expensive; gCAWS
 * and CAWA win on large kernels (heartwall, srad_1) and on kmeans
 * (gCAWS's greedy active-warp throttling); CAWA adds ~5% over gCAWS
 * on average, with slight degradations on b+tree and strcltr_small
 * from their inter-warp locality.
 */

#include "harness.hh"

using namespace cawa;

int
main()
{
    bench::prefetch(bench::matrix(
        sensitiveWorkloadNames(),
        {bench::schedulerConfig(SchedulerKind::Lrr),
         bench::schedulerConfig(SchedulerKind::CawsOracle),
         bench::schedulerConfig(SchedulerKind::Gcaws),
         bench::cawaConfig()}));

    Table t({"benchmark", "caws(oracle)", "gcaws", "cawa"});
    double sums[3] = {};
    int n = 0;
    for (const auto &name : sensitiveWorkloadNames()) {
        const SimReport rr =
            bench::run(name, bench::schedulerConfig(SchedulerKind::Lrr));
        const SimReport caws = bench::run(
            name, bench::schedulerConfig(SchedulerKind::CawsOracle));
        const SimReport gcaws = bench::run(
            name, bench::schedulerConfig(SchedulerKind::Gcaws));
        const SimReport cawa = bench::run(name, bench::cawaConfig());
        const double vals[3] = {caws.ipc() / rr.ipc(),
                                gcaws.ipc() / rr.ipc(),
                                cawa.ipc() / rr.ipc()};
        t.row().cell(name).cell(vals[0], 3).cell(vals[1], 3)
            .cell(vals[2], 3);
        for (int i = 0; i < 3; ++i)
            sums[i] += vals[i];
        n++;
    }
    t.row()
        .cell("average")
        .cell(sums[0] / n, 3)
        .cell(sums[1] / n, 3)
        .cell(sums[2] / n, 3);
    bench::emit(t, "Fig 13: CAWS(oracle) vs gCAWS vs CAWA, normalized "
                   "to RR (paper: CAWA ~ gCAWS + 5%)");
    return 0;
}
