/**
 * @file
 * Ablation (Section 3.3): the CCBP/SHiP signature construction. The
 * paper forms signatures from the instruction PC xor-ed with the
 * memory address region; this bench sweeps the region granularity
 * (including effectively PC-only via a huge shift) under full CAWA.
 */

#include <cmath>

#include "harness.hh"

using namespace cawa;

int
main()
{
    struct Variant
    {
        const char *name;
        int shift;
    };
    const Variant variants[] = {
        {"pc-only (region>>40)", 40},
        {"line-region (>>7)", 7},
        {"512B-region (>>9)", 9},
        {"2KB-region (>>11)", 11},
        {"8KB-region (>>13)", 13},
    };
    const char *apps[] = {"kmeans", "bfs", "b+tree"};

    Table t({"signature", "kmeans", "bfs", "b+tree", "geomean"});
    for (const auto &v : variants) {
        t.row().cell(v.name);
        double prod = 1.0;
        for (const char *name : apps) {
            const SimReport rr = bench::run(
                name, bench::schedulerConfig(SchedulerKind::Lrr));
            GpuConfig cfg = bench::cawaConfig();
            cfg.cacp.regionShift = v.shift;
            const SimReport r = bench::run(name, cfg);
            const double speedup = r.ipc() / rr.ipc();
            t.cell(speedup, 3);
            prod *= speedup;
        }
        t.cell(std::pow(prod, 1.0 / std::size(apps)), 3);
    }
    bench::emit(t, "Ablation: CCBP/SHiP signature address-region "
                   "granularity (paper: PC xor address region)");
    return 0;
}
