/**
 * @file
 * Figure 16: L1D MPKI when CACP (driven by CPL's criticality
 * classification) is attached to criticality-oblivious schedulers —
 * RR, GTO and 2-level — compared with the same schedulers on the
 * baseline cache, plus the coordinated CAWA configuration.
 */

#include "harness.hh"

using namespace cawa;

int
main()
{
    std::vector<GpuConfig> cfgs;
    for (SchedulerKind s : {SchedulerKind::Lrr, SchedulerKind::Gto,
                            SchedulerKind::TwoLevel}) {
        for (CachePolicyKind c :
             {CachePolicyKind::Lru, CachePolicyKind::Cacp}) {
            GpuConfig cfg = bench::schedulerConfig(s);
            cfg.l1Policy = c;
            cfgs.push_back(cfg);
        }
    }
    cfgs.push_back(bench::cawaConfig());
    bench::prefetch(bench::matrix(sensitiveWorkloadNames(), cfgs));

    Table t({"benchmark", "rr", "rr+cacp", "gto", "gto+cacp", "2lvl",
             "2lvl+cacp", "cawa"});
    for (const auto &name : sensitiveWorkloadNames()) {
        auto mpki =[&](SchedulerKind s, CachePolicyKind c) {
            GpuConfig cfg = bench::schedulerConfig(s);
            cfg.l1Policy = c;
            return bench::run(name, cfg).mpki();
        };
        t.row()
            .cell(name)
            .cell(mpki(SchedulerKind::Lrr, CachePolicyKind::Lru), 2)
            .cell(mpki(SchedulerKind::Lrr, CachePolicyKind::Cacp), 2)
            .cell(mpki(SchedulerKind::Gto, CachePolicyKind::Lru), 2)
            .cell(mpki(SchedulerKind::Gto, CachePolicyKind::Cacp), 2)
            .cell(mpki(SchedulerKind::TwoLevel, CachePolicyKind::Lru),
                  2)
            .cell(mpki(SchedulerKind::TwoLevel, CachePolicyKind::Cacp),
                  2)
            .cell(bench::run(name, bench::cawaConfig()).mpki(), 2);
    }
    bench::emit(t, "Fig 16: L1D MPKI with CACP under different warp "
                   "schedulers");
    return 0;
}
