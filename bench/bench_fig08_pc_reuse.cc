/**
 * @file
 * Figure 8: reuse behaviour of the memory instructions (PCs) in the
 * bfs kernel, under the baseline 16KB L1D versus a 256KB L1D. The
 * paper's observations: with a large cache most lines see reuse;
 * with the small cache, reuse depends strongly on the inserting PC
 * (e.g. their PC-5's lines are almost never reused) — the insight
 * that motivates the CCBP/SHiP signatures.
 */

#include "harness.hh"

using namespace cawa;

namespace
{

void
report(const char *title, const SimReport &r)
{
    Table t({"mem-pc", "fills", "hits", "reused-evict%",
             "zero-reuse-evict%"});
    for (const auto &[pc, s] : r.l1.perPc) {
        const std::uint64_t evicted =
            s.reusedEvictions + s.zeroReuseEvictions;
        if (s.fills == 0)
            continue;
        t.row()
            .cell("PC-" + std::to_string(pc))
            .cell(s.fills)
            .cell(s.hits)
            .cell(evicted ? 100.0 * s.reusedEvictions / evicted : 0.0,
                  1)
            .cell(evicted
                      ? 100.0 * s.zeroReuseEvictions / evicted
                      : 0.0,
                  1);
    }
    bench::emit(t, title);
}

} // namespace

int
main()
{
    {
        const SimReport r = bench::run(
            "bfs", bench::schedulerConfig(SchedulerKind::Lrr));
        report("Fig 8 (right bars): per-PC reuse, baseline 16KB L1D",
               r);
    }
    {
        GpuConfig cfg = bench::schedulerConfig(SchedulerKind::Lrr);
        cfg.l1d.sets = 128; // 256KB: 128 sets x 16 ways x 128B
        const SimReport r = bench::run("bfs", cfg);
        report("Fig 8 (left bars): per-PC reuse, 256KB L1D (paper: "
               "high reuse everywhere)", r);
    }
    return 0;
}
