/**
 * @file
 * Table 2: the benchmark inventory with Sens/Non-sens classes, plus
 * this reproduction's launch geometry at the current bench scale.
 */

#include "harness.hh"

using namespace cawa;

int
main()
{
    Table t({"benchmark", "paper-data-set", "category", "grid",
             "block", "program-size", "smem(B)"});
    for (const auto &name : allWorkloadNames()) {
        auto wl = makeWorkload(name);
        MemoryImage mem;
        const KernelInfo kernel = wl->build(mem, bench::benchParams());
        t.row()
            .cell(name)
            .cell(wl->dataSet())
            .cell(wl->sensitive() ? "Sens" : "Non-sens")
            .cell(kernel.gridDim)
            .cell(kernel.blockDim)
            .cell(static_cast<std::uint64_t>(kernel.program.size()))
            .cell(kernel.smemPerBlock);
    }
    bench::emit(t, "Table 2: GPGPU benchmarks (scale " +
                       std::to_string(bench::benchScale()) + ")");
    return 0;
}
