/**
 * @file
 * Table 2: the benchmark inventory with Sens/Non-sens classes, plus
 * this reproduction's launch geometry at the current bench scale.
 * Kernel construction runs on the CAWA_BENCH_THREADS worker pool
 * (building every input data set is the expensive part here).
 */

#include "common/thread_pool.hh"
#include "harness.hh"

using namespace cawa;

namespace
{

struct Row
{
    std::string name;
    std::string dataSet;
    bool sensitive = false;
    int gridDim = 0;
    int blockDim = 0;
    std::uint64_t programSize = 0;
    int smemPerBlock = 0;
};

} // namespace

int
main()
{
    const auto names = allWorkloadNames();
    std::vector<Row> rows(names.size());

    ThreadPool pool(bench::benchThreads());
    parallelFor(pool, names.size(), [&](std::size_t i) {
        auto wl = makeWorkload(names[i]);
        MemoryImage mem;
        const KernelInfo kernel = wl->build(mem, bench::benchParams());
        rows[i] = {names[i],
                   wl->dataSet(),
                   wl->sensitive(),
                   kernel.gridDim,
                   kernel.blockDim,
                   static_cast<std::uint64_t>(kernel.program.size()),
                   kernel.smemPerBlock};
    });

    Table t({"benchmark", "paper-data-set", "category", "grid",
             "block", "program-size", "smem(B)"});
    for (const auto &row : rows) {
        t.row()
            .cell(row.name)
            .cell(row.dataSet)
            .cell(row.sensitive ? "Sens" : "Non-sens")
            .cell(row.gridDim)
            .cell(row.blockDim)
            .cell(row.programSize)
            .cell(row.smemPerBlock);
    }
    bench::emit(t, "Table 2: GPGPU benchmarks (scale " +
                       std::to_string(bench::benchScale()) + ")");
    return 0;
}
