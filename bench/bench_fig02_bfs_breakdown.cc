/**
 * @file
 * Figure 2: per-warp execution time for one bfs thread block, sorted:
 * (a) with the imbalanced input, (b) with the balanced input (only
 * branch divergence remains; the per-warp dynamic instruction counts
 * are printed as Fig 2(b)'s red curve), and (c) the fraction of each
 * warp's time spent in memory-subsystem stalls.
 */

#include <algorithm>

#include "harness.hh"

using namespace cawa;

namespace
{

const BlockRecord &
pickBlock(const SimReport &r)
{
    // A mid-grid block, away from dispatch-wave edges.
    return r.blocks[r.blocks.size() / 2];
}

void
report(const char *title, const SimReport &r)
{
    const BlockRecord &block = pickBlock(r);
    std::vector<WarpRecord> warps = block.warps;
    std::sort(warps.begin(), warps.end(),
              [](const WarpRecord &a, const WarpRecord &b) {
                  return a.execTime() < b.execTime();
              });
    Table t({"warp(sorted)", "exec-cycles", "norm-exec", "instr",
             "mem-stall%"});
    const double fastest = static_cast<double>(warps.front().execTime());
    for (std::size_t i = 0; i < warps.size(); ++i) {
        const auto &w = warps[i];
        t.row()
            .cell(static_cast<std::uint64_t>(i))
            .cell(w.execTime())
            .cell(w.execTime() / fastest, 3)
            .cell(w.instructions)
            .cell(w.execTime()
                      ? 100.0 * w.memStallCycles / w.execTime()
                      : 0.0,
                  1);
    }
    t.row().cell("disparity").cell(100.0 * block.disparity(), 1)
        .cell("%").cell("").cell("");
    bench::emit(t, title);
}

} // namespace

int
main()
{
    // (a) imbalanced input: workload-imbalance-driven disparity.
    {
        const SimReport r = bench::run(
            "bfs", bench::schedulerConfig(SchedulerKind::Lrr));
        report("Fig 2(a): bfs per-warp execution time, imbalanced "
               "input (paper: ~20%+ gap)", r);
    }
    // (b) balanced input: divergence-driven disparity and dynamic
    // instruction count spread.
    {
        WorkloadParams params = bench::benchParams();
        params.bfsBalanced = true;
        const SimReport r = bench::run(
            "bfs", bench::schedulerConfig(SchedulerKind::Lrr), params);
        report("Fig 2(b): bfs per-warp execution time + instruction "
               "counts, balanced input (paper: ~40% gap, <=20% instr "
               "spread)", r);
    }
    return 0;
}
