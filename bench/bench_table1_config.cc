/**
 * @file
 * Table 1: the simulated GPU configuration. Prints this simulator's
 * defaults next to the paper's GPGPU-sim GTX480 parameters.
 */

#include "harness.hh"

using namespace cawa;

int
main()
{
    const GpuConfig cfg = GpuConfig::fermiGtx480();
    std::cout << "== Table 1: simulator configuration ==\n"
              << cfg.describe() << "\n";

    Table t({"parameter", "paper", "this-simulator"});
    t.row().cell("Num. of SMs").cell("15").cell(cfg.numSms);
    t.row().cell("Max warps per SM").cell("48").cell(cfg.maxWarpsPerSm);
    t.row().cell("Max blocks per SM").cell("8").cell(cfg.maxBlocksPerSm);
    t.row().cell("Schedulers per SM").cell("2")
        .cell(cfg.numSchedulersPerSm);
    t.row().cell("Registers per SM").cell("32768").cell(cfg.regFileSize);
    t.row().cell("Shared memory (KB)").cell("48")
        .cell(cfg.sharedMemBytes / 1024);
    t.row().cell("L1D size (KB)").cell("16")
        .cell(cfg.l1d.sets * cfg.l1d.ways * cfg.l1d.lineBytes / 1024);
    t.row().cell("L1D sets/ways").cell("8/16")
        .cell(std::to_string(cfg.l1d.sets) + "/" +
              std::to_string(cfg.l1d.ways));
    t.row().cell("L2 size (KB)").cell("768")
        .cell(static_cast<std::uint64_t>(cfg.l2.banks) *
              cfg.l2.setsPerBank * cfg.l2.ways * cfg.l2.lineBytes /
              1024);
    t.row().cell("L2 sets/ways/banks").cell("64/16/6")
        .cell(std::to_string(cfg.l2.setsPerBank) + "/" +
              std::to_string(cfg.l2.ways) + "/" +
              std::to_string(cfg.l2.banks));
    t.row().cell("Min L2 latency").cell("120")
        .cell(2 * cfg.icntLatency + cfg.l2.latency);
    t.row().cell("Min DRAM latency").cell("220")
        .cell(2 * cfg.icntLatency + cfg.dramLatency + 1);
    t.row().cell("Warp size").cell("32").cell(cfg.warpSize);
    bench::emit(t, "Table 1 reproduction");
    return 0;
}
