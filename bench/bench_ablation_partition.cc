/**
 * @file
 * Ablation (Section 3.3): sensitivity of CACP to the number of L1D
 * ways reserved for critical cache blocks. The paper's sensitivity
 * analysis selected 8 of 16 ways; this bench sweeps the partition
 * size under the full CAWA configuration on cache-sensitive
 * workloads.
 */

#include <cmath>

#include "harness.hh"

using namespace cawa;

int
main()
{
    const int way_options[] = {0, 2, 4, 6, 8, 10, 12, 16};
    const char *apps[] = {"kmeans", "bfs", "b+tree", "strcltr_small"};

    Table t({"critical-ways", "kmeans", "bfs", "b+tree",
             "strcltr_small", "geomean"});
    for (int ways : way_options) {
        t.row().cell(ways);
        double prod = 1.0;
        for (const char *name : apps) {
            const SimReport rr = bench::run(
                name, bench::schedulerConfig(SchedulerKind::Lrr));
            GpuConfig cfg = bench::cawaConfig();
            cfg.cacp.criticalWays = ways;
            const SimReport r = bench::run(name, cfg);
            const double speedup = r.ipc() / rr.ipc();
            t.cell(speedup, 3);
            prod *= speedup;
        }
        t.cell(std::pow(prod, 1.0 / std::size(apps)), 3);
    }
    bench::emit(t, "Ablation: CACP critical-way partition sweep "
                   "(paper: 8/16 best overall)");
    return 0;
}
