/**
 * @file
 * Simulator-speed benchmarks, two layers:
 *
 *  1. An execution-mode comparison: each memory-bound workload runs
 *     end-to-end in three modes -- flat ticking, the event-driven
 *     fast-forward core, and fast-forward with the parallel-SM
 *     fork-join team (simThreads = 4; override with
 *     CAWA_BENCH_SIM_THREADS) -- and the sim-cycles/s of all three,
 *     plus both speedups over flat, are printed and exported to
 *     BENCH_sim_speed.json (override the path with CAWA_BENCH_JSON).
 *     Each mode is timed best-of-N (N = CAWA_BENCH_REPS, default 3)
 *     after one untimed warmup iteration. The simulated cycle counts
 *     of the runs are asserted equal, so the report doubles as a
 *     coarse bit-identity check. The export records the machine's
 *     hardware concurrency: the perf gate only enforces the parallel
 *     floor when the measuring machine has enough cores to realize
 *     it. A final instrumented flat run per workload (see
 *     GpuConfig::profilePhases) prints where the tick loop's wall
 *     time goes (scheduler / L1 / stall accounting / CPL sampling /
 *     memory system) and lands in the export as "phases".
 *
 *  2. google-benchmark microbenchmarks of the hot primitives (cache
 *     probe path, CPL classification, coalescer) and a small
 *     end-to-end run, guarding against regressions in the
 *     simulator's own performance.
 *
 * Problem scale follows CAWA_BENCH_SCALE (default 0.5).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "cawa/criticality.hh"
#include "common/thread_pool.hh"
#include "harness.hh"
#include "mem/coalescer.hh"
#include "mem/replacement.hh"
#include "sim/gpu.hh"
#include "workloads/registry.hh"

using namespace cawa;

namespace
{

// ---------------------------------------------------------------
// Fast-forward on/off comparison.
// ---------------------------------------------------------------

struct FfSample
{
    std::uint64_t cycles = 0;
    double seconds = 0.0;
};

/**
 * Hot-path phase breakdown from one instrumented flat run (see
 * GpuConfig::profilePhases): wall seconds per tick section, plus the
 * run's total wall time so shares can be reported against it.
 */
struct PhaseBreakdown
{
    double sched = 0.0;
    double l1 = 0.0;
    double account = 0.0;
    double cpl = 0.0;
    double mem = 0.0;
    double wall = 0.0;

    double share(double x) const { return wall > 0.0 ? x / wall : 0.0; }
};

struct FfResult
{
    std::string workload;
    std::uint64_t cycles = 0;
    double cyclesPerSecFlat = 0.0;
    double cyclesPerSecFf = 0.0;
    double cyclesPerSecParallel = 0.0; ///< ff + simThreads workers
    PhaseBreakdown phases;

    double speedup() const
    {
        return cyclesPerSecFlat > 0.0
            ? cyclesPerSecFf / cyclesPerSecFlat : 0.0;
    }

    double parallelSpeedup() const
    {
        return cyclesPerSecFlat > 0.0
            ? cyclesPerSecParallel / cyclesPerSecFlat : 0.0;
    }
};

/** Parallel-SM worker count for the bench's parallel column. */
int
benchSimThreads()
{
    if (const char *v = std::getenv("CAWA_BENCH_SIM_THREADS"))
        if (const int n = std::atoi(v); n >= 1 && n <= 256)
            return n;
    return 4;
}

/** Timed repetitions per workload (best-of-N); CAWA_BENCH_REPS. */
int
benchReps()
{
    if (const char *v = std::getenv("CAWA_BENCH_REPS"))
        if (const int n = std::atoi(v); n >= 1 && n <= 100)
            return n;
    return 3;
}

/** One timed end-to-end run (build excluded from the timing). */
FfSample
timedRun(const std::string &workload, bool fast_forward, double scale,
         int sim_threads = 1)
{
    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.fastForward = fast_forward;
    cfg.simThreads = sim_threads;
    auto wl = makeWorkload(workload);
    MemoryImage mem;
    WorkloadParams params;
    params.scale = scale;
    const KernelInfo kernel = wl->build(mem, params);

    const auto start = std::chrono::steady_clock::now();
    const SimReport r = runKernel(cfg, mem, kernel);
    const auto stop = std::chrono::steady_clock::now();
    return {r.cycles,
            std::chrono::duration<double>(stop - start).count()};
}

/**
 * One instrumented flat run: every cycle ticked (no fast-forward, so
 * the breakdown covers the full tick loop) with profilePhases timing
 * each section. Timing-only instrumentation: the simulated results
 * are identical to the measured runs'.
 */
PhaseBreakdown
measurePhases(const std::string &workload, double scale)
{
    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.fastForward = false;
    cfg.profilePhases = true;
    auto wl = makeWorkload(workload);
    MemoryImage mem;
    WorkloadParams params;
    params.scale = scale;
    const KernelInfo kernel = wl->build(mem, params);

    const auto start = std::chrono::steady_clock::now();
    const SimReport r = runKernel(cfg, mem, kernel);
    const auto stop = std::chrono::steady_clock::now();

    PhaseBreakdown p;
    p.sched = r.phaseSchedSeconds;
    p.l1 = r.phaseL1Seconds;
    p.account = r.phaseAccountSeconds;
    p.cpl = r.phaseCplSeconds;
    p.mem = r.phaseMemSeconds;
    p.wall = std::chrono::duration<double>(stop - start).count();
    return p;
}

/**
 * Best-of-N timing for one workload in both modes. The simulated
 * cycle count must not depend on the mode.
 */
FfResult
compareWorkload(const std::string &workload, double scale, int reps)
{
    FfResult res;
    res.workload = workload;
    double best_flat = 0.0;
    double best_ff = 0.0;
    double best_par = 0.0;
    // Iteration -1 is an untimed warmup of all three modes (first
    // touches of the allocator and page cache land there instead of
    // in a measured rep); its cycle-equality check still runs.
    for (int i = -1; i < reps; ++i) {
        const FfSample flat = timedRun(workload, false, scale);
        const FfSample ff = timedRun(workload, true, scale);
        const FfSample par =
            timedRun(workload, true, scale, benchSimThreads());
        if (flat.cycles != ff.cycles || flat.cycles != par.cycles) {
            std::fprintf(
                stderr,
                "FATAL: %s simulated %llu cycles flat but %llu "
                "fast-forwarded and %llu parallel\n", workload.c_str(),
                static_cast<unsigned long long>(flat.cycles),
                static_cast<unsigned long long>(ff.cycles),
                static_cast<unsigned long long>(par.cycles));
            std::exit(1);
        }
        res.cycles = flat.cycles;
        if (i < 0)
            continue; // warmup: verified, not measured
        best_flat = std::max(best_flat,
                             static_cast<double>(flat.cycles) /
                                 flat.seconds);
        best_ff = std::max(best_ff,
                           static_cast<double>(ff.cycles) /
                               ff.seconds);
        best_par = std::max(best_par,
                            static_cast<double>(par.cycles) /
                                par.seconds);
    }
    res.cyclesPerSecFlat = best_flat;
    res.cyclesPerSecFf = best_ff;
    res.cyclesPerSecParallel = best_par;
    return res;
}

std::string
jsonReport(const std::vector<FfResult> &results, double scale)
{
    std::ostringstream out;
    out << "{\n  \"schema\": \"cawa-bench-sim-speed-v1\",\n"
        << "  \"scale\": " << scale << ",\n"
        << "  \"config\": \"fermiGtx480\",\n"
        << "  \"simThreads\": " << benchSimThreads() << ",\n"
        << "  \"hardwareConcurrency\": "
        << ThreadPool::defaultThreadCount() << ",\n"
        << "  \"entries\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
        const FfResult &r = results[i];
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", r.speedup());
        char pbuf[32];
        std::snprintf(pbuf, sizeof(pbuf), "%.2f", r.parallelSpeedup());
        char phases[160];
        std::snprintf(phases, sizeof(phases),
                      "{\"sched\": %.3f, \"l1\": %.3f, "
                      "\"account\": %.3f, \"cpl\": %.3f, "
                      "\"mem\": %.3f, \"wall\": %.3f}",
                      r.phases.sched, r.phases.l1, r.phases.account,
                      r.phases.cpl, r.phases.mem, r.phases.wall);
        out << "    {\"workload\": \"" << r.workload << "\""
            << ", \"simCycles\": " << r.cycles
            << ", \"cyclesPerSecFlat\": "
            << static_cast<std::uint64_t>(r.cyclesPerSecFlat)
            << ", \"cyclesPerSecFastForward\": "
            << static_cast<std::uint64_t>(r.cyclesPerSecFf)
            << ", \"cyclesPerSecParallel\": "
            << static_cast<std::uint64_t>(r.cyclesPerSecParallel)
            << ", \"speedup\": " << buf
            << ", \"parallelSpeedup\": " << pbuf
            << ", \"phases\": " << phases << "}"
            << (i + 1 < results.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    return out.str();
}

/**
 * Every registered workload, in registry order. The full set (not
 * just the memory-bound ones where cycle skipping pays off) keeps the
 * perf gate sensitive to hot-path regressions that only show up in
 * compute-bound or divergence-heavy kernels.
 */
const char *const kFfWorkloads[] = {
    "bfs",      "b+tree",        "heartwall", "kmeans",
    "needle",   "srad_1",        "strcltr_small", "backprop",
    "particle", "pathfinder",    "strcltr_mid",   "tpacf"};

void
runFastForwardComparison()
{
    const double scale = bench::benchScale();
    const int reps = benchReps();

    std::printf("Execution-mode comparison (scale %.2f, best of %d "
                "after 1 warmup, parallel = ff + %d threads on %d "
                "cores)\n",
                scale, reps, benchSimThreads(),
                ThreadPool::defaultThreadCount());
    std::printf("%-12s %12s %14s %14s %14s %8s %8s\n", "workload",
                "simCycles", "flat cyc/s", "ff cyc/s", "par cyc/s",
                "ff-x", "par-x");

    std::vector<FfResult> results;
    for (const char *workload : kFfWorkloads) {
        results.push_back(compareWorkload(workload, scale, reps));
        FfResult &r = results.back();
        std::printf("%-12s %12llu %14.0f %14.0f %14.0f %7.2fx %7.2fx\n",
                    r.workload.c_str(),
                    static_cast<unsigned long long>(r.cycles),
                    r.cyclesPerSecFlat, r.cyclesPerSecFf,
                    r.cyclesPerSecParallel, r.speedup(),
                    r.parallelSpeedup());
        r.phases = measurePhases(workload, scale);
    }

    std::printf("\nHot-path phase shares of flat wall time "
                "(one instrumented run each; remainder = execute + "
                "dispatch + loop overhead)\n");
    std::printf("%-12s %7s %7s %7s %7s %7s\n", "workload", "sched",
                "l1", "account", "cpl", "mem");
    for (const FfResult &r : results) {
        const PhaseBreakdown &p = r.phases;
        std::printf("%-12s %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%%\n",
                    r.workload.c_str(), 100.0 * p.share(p.sched),
                    100.0 * p.share(p.l1), 100.0 * p.share(p.account),
                    100.0 * p.share(p.cpl), 100.0 * p.share(p.mem));
    }

    const char *path_env = std::getenv("CAWA_BENCH_JSON");
    const std::string path =
        path_env ? path_env : "BENCH_sim_speed.json";
    std::ofstream out(path);
    out << jsonReport(results, scale);
    std::printf("wrote %s\n\n", path.c_str());
}

// ---------------------------------------------------------------
// Microbenchmarks.
// ---------------------------------------------------------------

void
BM_SimulateQuickstart(benchmark::State &state)
{
    const auto sched = static_cast<SchedulerKind>(state.range(0));
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        GpuConfig cfg = GpuConfig::fermiGtx480();
        cfg.numSms = 4;
        cfg.scheduler = sched;
        auto wl = makeWorkload("pathfinder");
        MemoryImage mem;
        WorkloadParams params;
        params.scale = 0.2;
        const KernelInfo kernel = wl->build(mem, params);
        const SimReport r = runKernel(cfg, mem, kernel);
        cycles += r.cycles;
        benchmark::DoNotOptimize(r.instructions);
    }
    state.counters["sim-cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void
BM_CachePolicyFillEvict(benchmark::State &state)
{
    TagArray tags(8, 16, 128);
    CacpPolicy policy(CacpConfig{});
    AccessInfo info;
    Addr addr = 0;
    for (auto _ : state) {
        info.addr = addr;
        addr += 128;
        const auto set = tags.setIndex(info.addr);
        const int way = policy.selectVictim(tags, set, info);
        auto &line = tags.line(set, way);
        if (line.valid)
            policy.onEvict(tags, set, way);
        line.valid = true;
        line.tag = tags.tagOf(info.addr);
        policy.onFill(tags, set, way, info);
        benchmark::DoNotOptimize(way);
    }
}

void
BM_CplClassification(benchmark::State &state)
{
    CriticalityPredictor cpl(48, 0.125);
    for (int s = 0; s < 48; ++s) {
        cpl.reset(s, 0, s / 16);
        cpl.onIssue(s, 10 + s);
    }
    int slot = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cpl.isCriticalWarp(slot));
        slot = (slot + 1) % 48;
    }
}

void
BM_Coalescer(benchmark::State &state)
{
    Coalescer c(128);
    std::vector<Addr> addrs;
    for (int lane = 0; lane < 32; ++lane)
        addrs.push_back(0x1000 + 64ull * lane);
    for (auto _ : state)
        benchmark::DoNotOptimize(c.coalesce(addrs));
}

BENCHMARK(BM_SimulateQuickstart)
    ->Arg(static_cast<int>(SchedulerKind::Lrr))
    ->Arg(static_cast<int>(SchedulerKind::Gcaws))
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CachePolicyFillEvict);
BENCHMARK(BM_CplClassification);
BENCHMARK(BM_Coalescer);

} // namespace

int
main(int argc, char **argv)
{
    // The fast-forward comparison runs first (skip via env when only
    // the microbenchmarks are wanted, e.g. under a profiler).
    const char *skip = std::getenv("CAWA_SKIP_FF_COMPARE");
    if (!skip || std::string(skip) != "1")
        runFastForwardComparison();

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
