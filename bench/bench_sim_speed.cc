/**
 * @file
 * google-benchmark microbenchmarks for the simulator itself:
 * end-to-end simulation throughput (cycles/second) and the hot
 * primitives (cache probe path, CPL classification, coalescer).
 * These guard against performance regressions in the simulator.
 */

#include <benchmark/benchmark.h>

#include "cawa/criticality.hh"
#include "mem/coalescer.hh"
#include "mem/replacement.hh"
#include "sim/gpu.hh"
#include "workloads/registry.hh"

using namespace cawa;

namespace
{

void
BM_SimulateQuickstart(benchmark::State &state)
{
    const auto sched = static_cast<SchedulerKind>(state.range(0));
    std::uint64_t cycles = 0;
    for (auto _ : state) {
        GpuConfig cfg = GpuConfig::fermiGtx480();
        cfg.numSms = 4;
        cfg.scheduler = sched;
        auto wl = makeWorkload("pathfinder");
        MemoryImage mem;
        WorkloadParams params;
        params.scale = 0.2;
        const KernelInfo kernel = wl->build(mem, params);
        const SimReport r = runKernel(cfg, mem, kernel);
        cycles += r.cycles;
        benchmark::DoNotOptimize(r.instructions);
    }
    state.counters["sim-cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}

void
BM_CachePolicyFillEvict(benchmark::State &state)
{
    TagArray tags(8, 16, 128);
    CacpPolicy policy(CacpConfig{});
    AccessInfo info;
    Addr addr = 0;
    for (auto _ : state) {
        info.addr = addr;
        addr += 128;
        const auto set = tags.setIndex(info.addr);
        const int way = policy.selectVictim(tags, set, info);
        auto &line = tags.line(set, way);
        if (line.valid)
            policy.onEvict(tags, set, way);
        line.valid = true;
        line.tag = tags.tagOf(info.addr);
        policy.onFill(tags, set, way, info);
        benchmark::DoNotOptimize(way);
    }
}

void
BM_CplClassification(benchmark::State &state)
{
    CriticalityPredictor cpl(48, 0.125);
    for (int s = 0; s < 48; ++s) {
        cpl.reset(s, 0, s / 16);
        cpl.onIssue(s, 10 + s);
    }
    int slot = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cpl.isCriticalWarp(slot));
        slot = (slot + 1) % 48;
    }
}

void
BM_Coalescer(benchmark::State &state)
{
    Coalescer c(128);
    std::vector<Addr> addrs;
    for (int lane = 0; lane < 32; ++lane)
        addrs.push_back(0x1000 + 64ull * lane);
    for (auto _ : state)
        benchmark::DoNotOptimize(c.coalesce(addrs));
}

BENCHMARK(BM_SimulateQuickstart)
    ->Arg(static_cast<int>(SchedulerKind::Lrr))
    ->Arg(static_cast<int>(SchedulerKind::Gcaws))
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CachePolicyFillEvict);
BENCHMARK(BM_CplClassification);
BENCHMARK(BM_Coalescer);

} // namespace

BENCHMARK_MAIN();
