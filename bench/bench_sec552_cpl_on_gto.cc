/**
 * @file
 * Section 5.5.2: criticality applied to an existing scheduler —
 * gCAWS is CPL layered on top of GTO's greedy-then-oldest rule
 * (criticality first, oldest as tie-break). The paper reports ~7%
 * improvement over GTO on the scheduling/cache-sensitive
 * applications. This bench prints gCAWS vs GTO per Sens application.
 */

#include "harness.hh"

using namespace cawa;

int
main()
{
    Table t({"benchmark", "gto-ipc", "gcaws-ipc", "gcaws/gto"});
    double sum = 0.0;
    int n = 0;
    for (const auto &name : sensitiveWorkloadNames()) {
        const SimReport gto =
            bench::run(name, bench::schedulerConfig(SchedulerKind::Gto));
        const SimReport gcaws = bench::run(
            name, bench::schedulerConfig(SchedulerKind::Gcaws));
        const double ratio = gcaws.ipc() / gto.ipc();
        t.row()
            .cell(name)
            .cell(gto.ipc(), 3)
            .cell(gcaws.ipc(), 3)
            .cell(ratio, 3);
        sum += ratio;
        n++;
    }
    t.row().cell("average").cell("").cell("").cell(sum / n, 3);
    bench::emit(t, "Sec 5.5.2: CPL on top of GTO (gCAWS vs GTO)");
    return 0;
}
