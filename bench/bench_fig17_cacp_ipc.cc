/**
 * @file
 * Figure 17: IPC when CACP is attached to the RR, GTO and 2-level
 * schedulers, normalized to each scheduler WITHOUT CACP. Paper:
 * adding CACP to the state-of-the-art schedulers yields +2% to
 * +16.5%, while the coordinated CAWA remains best overall.
 */

#include "harness.hh"

using namespace cawa;

int
main()
{
    std::vector<GpuConfig> cfgs;
    for (SchedulerKind s : {SchedulerKind::Lrr, SchedulerKind::Gto,
                            SchedulerKind::TwoLevel}) {
        for (CachePolicyKind c :
             {CachePolicyKind::Lru, CachePolicyKind::Cacp}) {
            GpuConfig cfg = bench::schedulerConfig(s);
            cfg.l1Policy = c;
            cfgs.push_back(cfg);
        }
    }
    cfgs.push_back(bench::cawaConfig());
    bench::prefetch(bench::matrix(sensitiveWorkloadNames(), cfgs));

    Table t({"benchmark", "rr+cacp", "gto+cacp", "2lvl+cacp",
             "cawa-vs-rr"});
    double sums[3] = {};
    int n = 0;
    for (const auto &name : sensitiveWorkloadNames()) {
        auto ipc = [&](SchedulerKind s, CachePolicyKind c) {
            GpuConfig cfg = bench::schedulerConfig(s);
            cfg.l1Policy = c;
            return bench::run(name, cfg).ipc();
        };
        const double rr = ipc(SchedulerKind::Lrr, CachePolicyKind::Lru);
        const double gto = ipc(SchedulerKind::Gto, CachePolicyKind::Lru);
        const double lvl =
            ipc(SchedulerKind::TwoLevel, CachePolicyKind::Lru);
        const double vals[3] = {
            ipc(SchedulerKind::Lrr, CachePolicyKind::Cacp) / rr,
            ipc(SchedulerKind::Gto, CachePolicyKind::Cacp) / gto,
            ipc(SchedulerKind::TwoLevel, CachePolicyKind::Cacp) / lvl,
        };
        t.row()
            .cell(name)
            .cell(vals[0], 3)
            .cell(vals[1], 3)
            .cell(vals[2], 3)
            .cell(bench::run(name, bench::cawaConfig()).ipc() / rr, 3);
        for (int i = 0; i < 3; ++i)
            sums[i] += vals[i];
        n++;
    }
    t.row()
        .cell("average")
        .cell(sums[0] / n, 3)
        .cell(sums[1] / n, 3)
        .cell(sums[2] / n, 3)
        .cell("paper: +2%..+16.5%");
    bench::emit(t, "Fig 17: IPC gain from adding CACP to existing "
                   "schedulers (normalized per scheduler)");
    return 0;
}
