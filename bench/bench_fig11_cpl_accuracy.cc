/**
 * @file
 * Figure 11: CPL warp-criticality prediction accuracy — how often the
 * actually-critical (last-finishing) warp of a block was classified
 * "slow" (criticality above half its block's warps) at the periodic
 * sampling points. Paper: average ~73%; needle is 100% because its
 * blocks hold a single warp.
 */

#include "harness.hh"

using namespace cawa;

int
main()
{
    Table t({"benchmark", "cpl-accuracy%", "paper-note"});
    double sum = 0.0;
    int n = 0;
    for (const auto &name : sensitiveWorkloadNames()) {
        const SimReport r = bench::run(
            name, bench::schedulerConfig(SchedulerKind::Gcaws));
        const double acc = r.cplAccuracy();
        t.row()
            .cell(name)
            .cell(100.0 * acc, 1)
            .cell(name == "needle"
                      ? "paper: 100% (single-warp blocks)"
                      : "");
        sum += acc;
        n++;
    }
    t.row().cell("average").cell(100.0 * sum / n, 1)
        .cell("paper: ~73%");
    bench::emit(t, "Fig 11: CPL criticality prediction accuracy");
    return 0;
}
