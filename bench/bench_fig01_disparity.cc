/**
 * @file
 * Figure 1: warp execution-time disparity per application under the
 * baseline RR scheduler — the highest (slowest-fastest)/fastest gap
 * across thread blocks, plus the average. The paper reports an
 * average around 45% with srad_1 the highest (~70%).
 */

#include "harness.hh"

using namespace cawa;

int
main()
{
    Table t({"benchmark", "max-disparity%", "avg-disparity%",
             "paper-note"});
    double sum = 0.0;
    int n = 0;
    for (const auto &name : allWorkloadNames()) {
        const SimReport r =
            bench::run(name, bench::schedulerConfig(SchedulerKind::Lrr));
        std::string note;
        if (name == "srad_1")
            note = "paper: highest (~70%)";
        if (name == "bfs")
            note = "paper Fig 2(a): ~20-40% per block";
        t.row()
            .cell(name)
            .cell(100.0 * r.maxDisparity(), 1)
            .cell(100.0 * r.avgDisparity(), 1)
            .cell(note);
        sum += r.maxDisparity();
        n++;
    }
    t.row().cell("average").cell(100.0 * sum / n, 1).cell("")
        .cell("paper: ~45%");
    bench::emit(t, "Fig 1: warp execution time disparity (RR)");
    return 0;
}
