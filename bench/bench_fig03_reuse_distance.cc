/**
 * @file
 * Figure 3: reuse-distance analysis for critical-warp cache lines in
 * bfs, measured (as in the paper's footnote) on a 16KB, 4-way,
 * 128B-line L1D. The paper observes that more than 60% of the blocks
 * that critical warps would reuse are evicted before re-reference.
 */

#include "harness.hh"

using namespace cawa;

int
main()
{
    GpuConfig cfg = bench::schedulerConfig(SchedulerKind::Lrr);
    cfg.l1d.sets = 32;  // 16KB as 32 sets x 4 ways (paper footnote)
    cfg.l1d.ways = 4;

    const SimReport r = bench::run("bfs", cfg);
    const CacheStats &s = r.l1;

    const char *buckets[] = {"1-4", "5-8", "9-16", "17-32", ">32"};
    std::uint64_t crit_hits = 0;
    for (auto v : s.criticalReuseDistanceHist)
        crit_hits += v;
    const std::uint64_t crit_lines = s.criticalFills;
    const std::uint64_t evicted_unused = s.zeroReuseCriticalEvictions;
    const std::uint64_t denom = crit_hits + evicted_unused;

    Table t({"reuse-distance", "critical-line-events", "share%"});
    for (int i = 0; i < 5; ++i) {
        t.row()
            .cell(buckets[i])
            .cell(s.criticalReuseDistanceHist[i])
            .cell(denom ? 100.0 * s.criticalReuseDistanceHist[i] / denom
                        : 0.0,
                  1);
    }
    t.row()
        .cell("evicted-before-reuse")
        .cell(evicted_unused)
        .cell(denom ? 100.0 * evicted_unused / denom : 0.0, 1);
    bench::emit(t, "Fig 3: reuse distance of critical-warp lines, bfs "
                   "16KB/4-way L1D (paper: >60% evicted before reuse)");

    std::printf("critical-warp fills: %llu\n",
                static_cast<unsigned long long>(crit_lines));
    return 0;
}
