/**
 * @file
 * Ablation (Eq. 1): the two CPL terms — instruction-count disparity
 * (Algorithm 2) and stall accumulation (Algorithm 3) — individually
 * vs combined, measured as gCAWS speedup over RR and CPL accuracy.
 */

#include "harness.hh"

using namespace cawa;

int
main()
{
    struct Variant
    {
        const char *name;
        bool inst;
        bool stall;
    };
    const Variant variants[] = {
        {"inst-only", true, false},
        {"stall-only", false, true},
        {"combined", true, true},
    };

    Table t({"benchmark", "variant", "speedup-vs-rr", "cpl-accuracy%"});
    for (const auto &name : sensitiveWorkloadNames()) {
        const SimReport rr =
            bench::run(name, bench::schedulerConfig(SchedulerKind::Lrr));
        for (const auto &v : variants) {
            GpuConfig cfg = bench::schedulerConfig(SchedulerKind::Gcaws);
            cfg.cplUseInstTerm = v.inst;
            cfg.cplUseStallTerm = v.stall;
            const SimReport r = bench::run(name, cfg);
            t.row()
                .cell(name)
                .cell(v.name)
                .cell(r.ipc() / rr.ipc(), 3)
                .cell(100.0 * r.cplAccuracy(), 1);
        }
    }
    bench::emit(t, "Ablation: CPL Eq.(1) terms (instruction disparity "
                   "vs stall cycles vs combined)");
    return 0;
}
