/**
 * @file
 * Shared helpers for the per-table/per-figure benchmark binaries.
 *
 * Every binary reproduces one table or figure of the paper: it runs
 * the required workload/configuration matrix, prints an aligned text
 * table (with the paper's reported values alongside where the paper
 * gives them) and a CSV block for plotting. Problem scale can be
 * adjusted with the CAWA_BENCH_SCALE environment variable
 * (default 0.5; the paper-shape observations hold from ~0.25 up).
 */

#ifndef CAWA_BENCH_HARNESS_HH
#define CAWA_BENCH_HARNESS_HH

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "common/table.hh"
#include "sim/functional.hh"
#include "sim/gpu.hh"
#include "sim/oracle.hh"
#include "workloads/registry.hh"

namespace cawa::bench
{

inline double
benchScale()
{
    if (const char *env = std::getenv("CAWA_BENCH_SCALE"))
        return std::atof(env);
    return 0.5;
}

inline WorkloadParams
benchParams()
{
    WorkloadParams params;
    params.scale = benchScale();
    return params;
}

/** The evaluated CAWA configuration: gCAWS + CACP. */
inline GpuConfig
cawaConfig()
{
    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.scheduler = SchedulerKind::Gcaws;
    cfg.l1Policy = CachePolicyKind::Cacp;
    return cfg;
}

inline GpuConfig
schedulerConfig(SchedulerKind kind)
{
    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.scheduler = kind;
    return cfg;
}

/** Cache key covering every config field the benches vary. */
inline std::string
runKey(const std::string &workload, const GpuConfig &cfg,
       const WorkloadParams &params)
{
    std::ostringstream oss;
    oss << workload << '|' << schedulerKindName(cfg.scheduler) << '|'
        << cachePolicyKindName(cfg.l1Policy) << '|'
        << cfg.cacp.criticalWays << '|' << cfg.cacp.regionShift << '|'
        << cfg.cacp.dynamicPartition << '|' << cfg.criticalFraction
        << '|' << cfg.cplQuantShift << '|' << cfg.cplUseInstTerm
        << cfg.cplUseStallTerm << '|' << cfg.numSms << '|'
        << cfg.l1d.sets << 'x' << cfg.l1d.ways << '|'
        << cfg.traceBlockId << '|' << params.seed << '|'
        << params.scale << '|' << params.bfsBalanced;
    return oss.str();
}

/**
 * Run one workload under @p cfg (CAWS oracle configs run the
 * profiling pass automatically) and verify the results; exits with
 * an error on functional mismatch so a broken simulator cannot
 * silently produce plausible-looking numbers. Identical
 * (workload, config, params) runs within one binary are memoized.
 */
inline SimReport
run(const std::string &workload, const GpuConfig &cfg,
    WorkloadParams params = benchParams())
{
    static std::map<std::string, SimReport> memo;
    const std::string key = runKey(workload, cfg, params);
    if (auto it = memo.find(key); it != memo.end())
        return it->second;
    auto wl = makeWorkload(workload);
    MemoryImage mem;
    const KernelInfo kernel = wl->build(mem, params);

    SimReport report;
    if (cfg.scheduler == SchedulerKind::CawsOracle) {
        auto profile_wl = makeWorkload(workload);
        MemoryImage profile_mem;
        profile_wl->build(profile_mem, params);
        report = runWithCawsOracle(cfg, mem, profile_mem, kernel);
    } else {
        report = runKernel(cfg, mem, kernel);
    }
    if (report.timedOut) {
        std::fprintf(stderr, "ERROR: %s timed out\n", workload.c_str());
        std::exit(1);
    }
    if (!wl->verify(mem)) {
        std::fprintf(stderr, "ERROR: %s failed verification under %s\n",
                     workload.c_str(), report.schedulerName.c_str());
        std::exit(1);
    }
    memo.emplace(key, report);
    return report;
}

/** Print the table and its CSV twin. */
inline void
emit(const Table &table, const std::string &title)
{
    table.print(std::cout, title);
    std::cout << "-- csv --\n";
    table.printCsv(std::cout);
    std::cout << std::endl;
}

} // namespace cawa::bench

#endif // CAWA_BENCH_HARNESS_HH
