/**
 * @file
 * Shared helpers for the per-table/per-figure benchmark binaries.
 *
 * Every binary reproduces one table or figure of the paper: it runs
 * the required workload/configuration matrix, prints an aligned text
 * table (with the paper's reported values alongside where the paper
 * gives them) and a CSV block for plotting. Problem scale can be
 * adjusted with the CAWA_BENCH_SCALE environment variable
 * (default 0.5; the paper-shape observations hold from ~0.25 up).
 *
 * Matrix-heavy binaries prefetch() their full run matrix through the
 * parallel sweep engine before emitting any table; worker count comes
 * from CAWA_BENCH_THREADS (default: all cores). Results are
 * bit-identical at any thread count.
 */

#ifndef CAWA_BENCH_HARNESS_HH
#define CAWA_BENCH_HARNESS_HH

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/table.hh"
#include "sim/functional.hh"
#include "sim/gpu.hh"
#include "sim/oracle.hh"
#include "sim/sweep.hh"
#include "workloads/registry.hh"
#include "workloads/sweep_jobs.hh"

namespace cawa::bench
{

/**
 * Validated CAWA_BENCH_SCALE parse: the whole string must be a
 * finite value > 0, otherwise fall back to @p fallback with a
 * warning (std::atof would silently turn garbage into 0.0 and
 * degenerate every workload).
 */
inline double
parseBenchScale(const char *text, double fallback = 0.5)
{
    if (!text || !*text)
        return fallback;
    char *end = nullptr;
    errno = 0;
    const double value = std::strtod(text, &end);
    if (end == text || *end != '\0' || errno == ERANGE ||
        !std::isfinite(value) || value <= 0.0) {
        std::fprintf(stderr,
                     "warning: ignoring invalid CAWA_BENCH_SCALE '%s' "
                     "(want a finite value > 0); using %g\n",
                     text, fallback);
        return fallback;
    }
    return value;
}

inline double
benchScale()
{
    return parseBenchScale(std::getenv("CAWA_BENCH_SCALE"));
}

/** Sweep worker count; 0 lets the engine use all cores. */
inline int
benchThreads()
{
    return sweepThreadsFromEnv();
}

inline WorkloadParams
benchParams()
{
    WorkloadParams params;
    params.scale = benchScale();
    return params;
}

/** The evaluated CAWA configuration: gCAWS + CACP. */
inline GpuConfig
cawaConfig()
{
    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.scheduler = SchedulerKind::Gcaws;
    cfg.l1Policy = CachePolicyKind::Cacp;
    return cfg;
}

inline GpuConfig
schedulerConfig(SchedulerKind kind)
{
    GpuConfig cfg = GpuConfig::fermiGtx480();
    cfg.scheduler = kind;
    return cfg;
}

/** Cache key covering every config field the benches vary. */
inline std::string
runKey(const std::string &workload, const GpuConfig &cfg,
       const WorkloadParams &params)
{
    std::ostringstream oss;
    oss << workload << '|' << schedulerKindName(cfg.scheduler) << '|'
        << cachePolicyKindName(cfg.l1Policy) << '|'
        << cfg.cacp.criticalWays << '|' << cfg.cacp.regionShift << '|'
        << cfg.cacp.dynamicPartition << '|' << cfg.criticalFraction
        << '|' << cfg.cplQuantShift << '|' << cfg.cplUseInstTerm
        << cfg.cplUseStallTerm << '|' << cfg.numSms << '|'
        << cfg.l1d.sets << 'x' << cfg.l1d.ways << '|'
        << cfg.traceBlockId << '|' << params.seed << '|'
        << params.scale << '|' << params.bfsBalanced;
    return oss.str();
}

/** Per-binary memo shared by prefetch() and run(). */
inline std::map<std::string, SimReport> &
runMemo()
{
    static std::map<std::string, SimReport> memo;
    return memo;
}

[[noreturn]] inline void
failJob(const std::string &workload, const SweepResult &res)
{
    if (!res.error.empty())
        std::fprintf(stderr, "ERROR: %s failed: %s\n", workload.c_str(),
                     res.error.c_str());
    else if (res.report.timedOut)
        std::fprintf(stderr, "ERROR: %s timed out\n", workload.c_str());
    else
        std::fprintf(stderr, "ERROR: %s failed verification under %s\n",
                     workload.c_str(),
                     res.report.schedulerName.c_str());
    std::exit(1);
}

/**
 * Run the whole (workload, config) matrix through the sweep engine
 * on CAWA_BENCH_THREADS workers and fill the memo, so subsequent
 * run() calls are lookups. Verification failures and timeouts abort
 * the binary, exactly like serial run().
 */
inline void
prefetch(const std::vector<std::pair<std::string, GpuConfig>> &runs,
         WorkloadParams params = benchParams())
{
    auto &memo = runMemo();
    std::vector<WorkloadJobSpec> specs;
    std::vector<std::string> keys;
    for (const auto &[workload, cfg] : runs) {
        const std::string key = runKey(workload, cfg, params);
        if (memo.count(key))
            continue;
        bool queued = false;
        for (const auto &seen : keys)
            queued = queued || seen == key;
        if (queued)
            continue;
        specs.push_back({workload, cfg, params});
        keys.push_back(key);
    }
    if (specs.empty())
        return;

    const SweepEngine engine(benchThreads());
    const auto results = engine.run(makeWorkloadJobs(specs));
    for (std::size_t i = 0; i < results.size(); ++i) {
        if (!results[i].ok())
            failJob(specs[i].workload, results[i]);
        memo.emplace(keys[i], results[i].report);
    }
}

/** Cross product helper for prefetch(): every name under every cfg. */
inline std::vector<std::pair<std::string, GpuConfig>>
matrix(const std::vector<std::string> &names,
       const std::vector<GpuConfig> &cfgs)
{
    std::vector<std::pair<std::string, GpuConfig>> runs;
    runs.reserve(names.size() * cfgs.size());
    for (const auto &name : names)
        for (const auto &cfg : cfgs)
            runs.emplace_back(name, cfg);
    return runs;
}

/**
 * Run one workload under @p cfg (CAWS oracle configs run the
 * profiling pass automatically) and verify the results; exits with
 * an error on functional mismatch so a broken simulator cannot
 * silently produce plausible-looking numbers. Identical
 * (workload, config, params) runs within one binary are memoized,
 * and prefetch() fills the same memo in parallel.
 */
inline SimReport
run(const std::string &workload, const GpuConfig &cfg,
    WorkloadParams params = benchParams())
{
    auto &memo = runMemo();
    const std::string key = runKey(workload, cfg, params);
    if (auto it = memo.find(key); it != memo.end())
        return it->second;
    const SweepResult res =
        runSweepJob(makeWorkloadJob({workload, cfg, params}));
    if (!res.ok())
        failJob(workload, res);
    memo.emplace(key, res.report);
    return res.report;
}

/** Print the table and its CSV twin. */
inline void
emit(const Table &table, const std::string &title)
{
    table.print(std::cout, title);
    std::cout << "-- csv --\n";
    table.printCsv(std::cout);
    std::cout << std::endl;
}

} // namespace cawa::bench

#endif // CAWA_BENCH_HARNESS_HH
