/**
 * @file
 * Figure 4: scheduler-induced wait experienced by the critical warp
 * under the baseline RR scheduler — cycles the critical warp was
 * ready to issue but not selected, as a fraction of its execution
 * time, compared with the same fraction under gCAWS. The paper
 * reports RR contributing up to 52.4% additional wait for the
 * critical warp.
 */

#include "harness.hh"

using namespace cawa;

namespace
{

double
criticalSchedWait(const SimReport &r)
{
    double sum = 0.0;
    int n = 0;
    for (const auto &b : r.blocks) {
        if (b.warps.size() < 2)
            continue;
        const WarpRecord &crit = b.warps[b.criticalWarp()];
        if (crit.execTime() == 0)
            continue;
        sum += static_cast<double>(crit.schedWaitCycles) /
               crit.execTime();
        n++;
    }
    return n ? sum / n : 0.0;
}

} // namespace

int
main()
{
    Table t({"benchmark", "rr-critical-schedwait%",
             "gcaws-critical-schedwait%"});
    for (const auto &name : sensitiveWorkloadNames()) {
        const SimReport rr =
            bench::run(name, bench::schedulerConfig(SchedulerKind::Lrr));
        const SimReport gc = bench::run(
            name, bench::schedulerConfig(SchedulerKind::Gcaws));
        t.row()
            .cell(name)
            .cell(100.0 * criticalSchedWait(rr), 2)
            .cell(100.0 * criticalSchedWait(gc), 2);
    }
    bench::emit(t, "Fig 4: scheduling delay seen by the critical warp "
                   "(paper: RR adds up to 52.4%)");
    return 0;
}
