/**
 * @file
 * Figure 12: the critical warp's scheduling priority over time for
 * one bfs thread block, under the baseline RR scheduler and under
 * gCAWS. The y-value is the warp's criticality rank in its block
 * (0 = lowest priority, warps-1 = highest). Paper shape: gCAWS holds
 * the critical warp at high rank far more often than RR.
 */

#include "harness.hh"

using namespace cawa;

namespace
{

void
trace(const char *title, SchedulerKind sched)
{
    GpuConfig cfg = bench::schedulerConfig(sched);
    cfg.traceBlockId = 2;
    cfg.traceSampleInterval = 256;
    const SimReport r = bench::run("bfs", cfg);

    const BlockRecord *block = nullptr;
    for (const auto &b : r.blocks)
        if (b.id == 2)
            block = &b;
    if (!block || r.trace.empty()) {
        std::printf("no trace captured\n");
        return;
    }
    const int critical = block->criticalWarp();

    Table t({"cycle", "critical-warp-rank", "of-n-warps"});
    std::uint64_t rank_sum = 0;
    for (const auto &sample : r.trace) {
        int rank = 0;
        for (std::size_t w = 0; w < sample.criticality.size(); ++w)
            if (sample.criticality[w] <
                sample.criticality[critical])
                rank++;
        t.row()
            .cell(sample.cycle)
            .cell(rank)
            .cell(static_cast<std::uint64_t>(
                sample.criticality.size()));
        rank_sum += rank;
    }
    bench::emit(t, title);
    std::printf("mean rank of critical warp: %.2f / %zu\n\n",
                static_cast<double>(rank_sum) / r.trace.size(),
                block->warps.size() - 1);
}

} // namespace

int
main()
{
    trace("Fig 12 (baseline RR): critical warp's criticality rank "
          "over time, bfs block 2",
          SchedulerKind::Lrr);
    trace("Fig 12 (gCAWS): critical warp's criticality rank over "
          "time, bfs block 2",
          SchedulerKind::Gcaws);
    return 0;
}
