#!/bin/sh
# End-to-end smoke test for the simulation service: start cawad on a
# temporary socket, submit the same job twice through cawa_submit,
# and require the second submission to be a cache hit whose report is
# byte-identical both to the first run's and to a direct
# `cawa_sweep --out` of the same job. Finishes with a status query
# and a graceful SIGTERM shutdown.
#
# Usage: scripts/service_smoke.sh [BUILD_DIR]
#   BUILD_DIR  CMake build tree holding src/tools (default: build)
#
# Every command's output is appended to BUILD_DIR/service_smoke.log so
# a CI failure can be diagnosed from the uploaded artifact.
set -eu

cd "$(dirname "$0")/.."
build=${1:-build}
tools=$build/src/tools
log=$build/service_smoke.log

if [ ! -x "$tools/cawad" ] || [ ! -x "$tools/cawa_submit" ] ||
   [ ! -x "$tools/cawa_sweep" ]; then
    echo "service_smoke: missing binaries under $tools" \
         "(build the cawad, cawa_submit and cawa_sweep targets)" >&2
    exit 2
fi

mkdir -p "$build"
: > "$log"
tmp=$(mktemp -d "${TMPDIR:-/tmp}/cawa_service_smoke.XXXXXX")
daemon_pid=

say() {
    echo "service_smoke: $*" >&2
    echo "service_smoke: $*" >> "$log"
}

fail() {
    say "FAIL: $*"
    exit 1
}

cleanup() {
    if [ -n "$daemon_pid" ] && kill -0 "$daemon_pid" 2>/dev/null; then
        kill -TERM "$daemon_pid" 2>/dev/null || true
        wait "$daemon_pid" 2>/dev/null || true
    fi
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

sock=$tmp/cawad.sock
job=bfs.gcaws.cacp.seed1.scale0.05

say "starting cawad on $sock"
"$tools/cawad" --socket "$sock" --state-dir "$tmp/state" \
    --checkpoint-interval 20000 >> "$log" 2>&1 &
daemon_pid=$!

up=
for _ in $(seq 1 100); do
    if "$tools/cawa_submit" --socket "$sock" --status \
        >> "$log" 2>&1; then
        up=1
        break
    fi
    sleep 0.1
done
[ -n "$up" ] || fail "cawad never answered a status query"

submit() {
    out_dir=$1
    "$tools/cawa_submit" --socket "$sock" --workload bfs \
        --scale 0.05 --out "$out_dir" 2>> "$log"
}

say "first submission (must run fresh)"
first=$(submit "$tmp/first") || fail "first submission failed"
echo "$first" >> "$log"
[ "$first" = "cached=false" ] || fail "first submission was '$first'"

say "second identical submission (must hit the cache)"
second=$(submit "$tmp/second") || fail "second submission failed"
echo "$second" >> "$log"
[ "$second" = "cached=true" ] || fail "second submission was '$second'"

say "direct cawa_sweep run of the same job"
"$tools/cawa_sweep" --workloads bfs --schedulers gcaws \
    --policies cacp --scale 0.05 --no-isolate \
    --out "$tmp/direct" >> "$log" 2>&1 ||
    fail "direct cawa_sweep run failed"

cmp "$tmp/first/$job.json" "$tmp/second/$job.json" >> "$log" 2>&1 ||
    fail "cached report differs from the fresh daemon report"
cmp "$tmp/first/$job.json" "$tmp/direct/$job.json" >> "$log" 2>&1 ||
    fail "daemon report differs from a direct cawa_sweep --out run"
say "reports are byte-identical (fresh == cached == direct)"

status=$("$tools/cawa_submit" --socket "$sock" --status \
    2>> "$log") || fail "status query failed"
echo "$status" >> "$log"
case "$status" in
  *'"type":"status-reply"'*'"entries":1'*) ;;
  *) fail "unexpected status reply: $status" ;;
esac

say "stopping cawad"
kill -TERM "$daemon_pid"
wait "$daemon_pid" || fail "cawad exited non-zero on SIGTERM"
daemon_pid=

say "all green"
