#!/bin/sh
# CI entry point. Default mode configures + builds the default
# (RelWithDebInfo) and check (Debug + sanitizers + deepest audits)
# presets, runs the tier-1 test suite on the default build, re-runs
# the checkpoint- and isolation-labelled suites under the check preset
# (every restore audited at CAWA_CHECK=2, sim_assert failures throw,
# worker forks exercised under ASan), runs the distributed-labelled
# shard-coordinator suite on both presets, runs the
# checkpoint-corruption, worker-crash and sharded-sweep chaos fuzzers,
# and finishes with a negative-path sweep: a fault-injected SIGKILL of
# an isolated worker must still end with exit 0 and every job
# journaled ok.
#
# Usage: scripts/ci.sh [-j N]
#                      [--format-only | --perf-only | --tsan-only |
#                       --service-only]
#   -j N           parallel build/test jobs (default: nproc)
#   --format-only  run only the clang-format diff check and exit.
#                  Checks only lines changed relative to
#                  $CAWA_FORMAT_BASE (default origin/main) so the
#                  check never demands a whole-tree reformat.
#   --perf-only    build the perf preset, run bench_sim_speed and
#                  gate the result against the committed baseline
#                  (scripts/perf_gate.py, tolerance
#                  $CAWA_PERF_TOLERANCE, default 15%).
#   --tsan-only    build the tsan preset (-fsanitize=thread) and run
#                  the parallel-labelled suites under it: the
#                  parallel-SM fork-join must be data-race-free, not
#                  just byte-deterministic.
#   --service-only build the default and check presets, run the
#                  service-labelled suites (cawad daemon, queue,
#                  cache, protocol) on both, and finish each with the
#                  end-to-end scripts/service_smoke.sh run -- a
#                  daemon round trip whose cached replay must be
#                  byte-identical to a direct cawa_sweep --out.
#   -h, --help     this text
#
# POSIX sh: pipefail is enabled only where the shell supports it, and
# every piped command's exit status is checked explicitly.
set -eu
if (set -o pipefail) 2>/dev/null; then
    set -o pipefail
fi

cd "$(dirname "$0")/.."

usage() {
    sed -n '2,36p' "$0" | sed 's/^# \{0,1\}//'
}

jobs=$(nproc 2>/dev/null || echo 4)
mode=full
while [ $# -gt 0 ]; do
    case "$1" in
      -j)
        if [ $# -lt 2 ]; then
            echo "ci: -j needs a value" >&2
            exit 2
        fi
        jobs=$2
        shift 2
        ;;
      -j*)
        jobs=${1#-j}
        shift
        ;;
      --format-only)
        mode=format
        shift
        ;;
      --perf-only)
        mode=perf
        shift
        ;;
      --tsan-only)
        mode=tsan
        shift
        ;;
      --service-only)
        mode=service
        shift
        ;;
      -h|--help)
        usage
        exit 0
        ;;
      -*)
        echo "ci: unknown option '$1'" >&2
        usage >&2
        exit 2
        ;;
      *)
        echo "ci: unexpected positional argument '$1'" >&2
        usage >&2
        exit 2
        ;;
    esac
done
case "$jobs" in
  ''|*[!0-9]*)
    echo "ci: -j expects a positive integer, got '$jobs'" >&2
    exit 2
    ;;
esac

run() {
    echo "ci: $*" >&2
    "$@"
}

# --- format check: only lines changed vs the merge base --------------
check_format() {
    if ! command -v clang-format >/dev/null 2>&1; then
        echo "ci: clang-format not installed; skipping format check" >&2
        return 0
    fi
    base=${CAWA_FORMAT_BASE:-origin/main}
    if ! git rev-parse --verify --quiet "$base" >/dev/null; then
        echo "ci: format base '$base' not found; skipping" >&2
        return 0
    fi
    merge_base=$(git merge-base "$base" HEAD)
    # git-clang-format exits non-zero and prints a diff when changed
    # lines are mis-formatted; committed and staged state only.
    if git clang-format --quiet --diff "$merge_base" -- \
        '*.cc' '*.hh' '*.cpp' '*.hpp'; then
        echo "ci: format clean" >&2
    else
        echo "ci: clang-format violations in the diff against" \
             "$base (run: git clang-format $merge_base)" >&2
        return 1
    fi
}

# --- perf gate: bench_sim_speed vs the committed baseline ------------
perf_gate() {
    run cmake --preset perf
    run cmake --build --preset perf -j "$jobs" --target bench_sim_speed
    report=build-perf/BENCH_sim_speed.json
    # The gated report comes from the fast-forward comparison that
    # runs before the microbenchmarks; filter the latter out.
    run env CAWA_BENCH_JSON="$report" \
        ./build-perf/bench/bench_sim_speed \
        --benchmark_filter=DISABLED_none
    run python3 scripts/perf_gate.py \
        bench/baselines/BENCH_sim_speed.json "$report"
}

# --- service tier: cawad daemon suites + end-to-end smoke ------------
service_check() {
    # Plain build first, then the sanitized check preset: the daemon's
    # event loop, fork/exec worker handling and the client codecs must
    # be ASan-clean, and the smoke round trip (fresh run, cached
    # replay, direct cawa_sweep comparison -- all byte-identical) must
    # hold under both.
    for preset in default check; do
        run cmake --preset "$preset"
        run cmake --build --preset "$preset" -j "$jobs" \
            --target cawad cawa_submit cawa_sweep test_service
        run ctest --preset "$preset" -L service -j "$jobs"
        run sh scripts/service_smoke.sh \
            "$(preset_build_dir "$preset")"
    done
}

preset_build_dir() {
    case "$1" in
      default) echo build ;;
      check)   echo build-check ;;
      *)       echo "build-$1" ;;
    esac
}

# --- TSan: the parallel-SM fork-join under -fsanitize=thread ---------
tsan_check() {
    run cmake --preset tsan
    run cmake --build --preset tsan -j "$jobs" \
        --target test_parallel_sm test_sweep_determinism test_arena \
        test_coordinator
    # halt_on_error: the first race fails the job instead of scrolling
    # past; second_deadlock_stack aids lock-order reports.
    run env TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
        ctest --preset tsan -L parallel -j "$jobs"
    # The arena pools back per-SM state touched inside the fork-join;
    # their unit suites must also be clean under TSan.
    run env TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
        ctest --preset tsan -R '^(SlabPool|PooledMap|RingQueue)\.' \
        -j "$jobs"
    # The shard coordinator's fork-mode runners each start a control +
    # heartbeat thread next to the job loop; the whole chaos matrix
    # must be race-free too. die_after_fork=0 lets the single-threaded
    # runner children start those threads after fork.
    run env TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1 die_after_fork=0" \
        ctest --preset tsan -L distributed -j "$jobs"
}

case "$mode" in
  format)
    check_format
    exit $?
    ;;
  perf)
    perf_gate
    exit $?
    ;;
  tsan)
    tsan_check
    exit $?
    ;;
  service)
    service_check
    exit $?
    ;;
esac

run cmake --preset default
run cmake --build --preset default -j "$jobs"

run cmake --preset check
run cmake --build --preset check -j "$jobs"

# Tier-1: the full suite on the default build (includes the
# trace-labelled observer-purity matrix).
run ctest --preset default -j "$jobs"

# Snapshot/restore suites under sanitizers + deep audits.
run ctest --preset check -L checkpoint -j "$jobs"

# Process-isolation suites (supervisor, subprocess/frame protocol) on
# the default build, then again under the sanitized check preset: the
# fork/exec, signal and classification paths must be ASan-clean.
run ctest --preset default -L isolation -j "$jobs"
run ctest --preset check -L isolation -j "$jobs"

# Distributed sharded-sweep suites (coordinator, work stealing,
# epoch fencing, deterministic merge): plain, then ASan-clean.
run ctest --preset default -L distributed -j "$jobs"
run ctest --preset check -L distributed -j "$jobs"

# Simulation-service suites (cawad daemon end-to-end, persistent
# queue, result cache, protocol): plain, then ASan-clean. The
# dedicated service CI job additionally runs the shell-level smoke
# round trip (scripts/ci.sh --service-only).
run ctest --preset default -L service -j "$jobs"
run ctest --preset check -L service -j "$jobs"

# Checkpoint-corruption + worker-crash + sharded-sweep chaos fuzz:
# every flipped bit must be rejected, a SIGKILL'd worker must never
# lose or duplicate a journal entry, and a chaos-ridden sharded sweep
# must merge byte-identical to the in-process oracle. Capture the
# status explicitly so a set -e shell without pipefail can still
# report which stage failed.
fuzz_rc=0
run ./build/src/tools/cawa_fuzz --seeds 10 --ckpt-seeds 5 \
    --crash-seeds 3 --shard-chaos 3 || fuzz_rc=$?
if [ "$fuzz_rc" -ne 0 ]; then
    echo "ci: cawa_fuzz failed with status $fuzz_rc" >&2
    exit "$fuzz_rc"
fi

# The same shard chaos seeds again under ASan: the coordinator's
# steal/fence/respawn bookkeeping and the runner threads must be
# sanitizer-clean end to end.
fuzz_rc=0
run ./build-check/src/tools/cawa_fuzz --seeds 0 --ckpt-seeds 0 \
    --crash-seeds 0 --shard-chaos 3 || fuzz_rc=$?
if [ "$fuzz_rc" -ne 0 ]; then
    echo "ci: cawa_fuzz --shard-chaos (check preset) failed with" \
         "status $fuzz_rc" >&2
    exit "$fuzz_rc"
fi

# Negative path end-to-end: a sweep whose isolated worker is
# SIGKILL'd mid-run must respawn the worker, resume from its
# checkpoint, exit 0, and journal every job ok.
iso_journal=build/ci_isolation_journal.jsonl
iso_ckpts=build/ci_isolation_ckpts
rm -rf "$iso_journal" "$iso_ckpts"
mkdir -p "$iso_ckpts"
iso_rc=0
run ./build/src/tools/cawa_sweep \
    --workloads bfs --schedulers gcaws --policies cacp --scale 0.1 \
    --isolate --fault-kill-nth 0 --fault-cycle 6000 \
    --checkpoint-dir "$iso_ckpts" --checkpoint-interval 2000 \
    --journal "$iso_journal" --compact --no-blocks --no-trace \
    >/dev/null || iso_rc=$?
if [ "$iso_rc" -ne 0 ]; then
    echo "ci: fault-injected isolated sweep exited $iso_rc" \
         "(want 0)" >&2
    exit 1
fi
if [ "$(wc -l < "$iso_journal")" -ne 1 ] ||
   grep -qv '"status":"ok"' "$iso_journal"; then
    echo "ci: isolated sweep journal not fully ok:" >&2
    cat "$iso_journal" >&2
    exit 1
fi
rm -rf "$iso_journal" "$iso_ckpts"

echo "ci: all green" >&2
