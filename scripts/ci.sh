#!/usr/bin/env bash
# CI entry point: configure + build the default (RelWithDebInfo) and
# check (Debug + sanitizers + deepest audits) presets, run the tier-1
# test suite on the default build, then run the checkpoint-labelled
# suites again under the check preset, where every restore is audited
# at CAWA_CHECK=2 and sim_assert failures throw.
#
# Usage: scripts/ci.sh [-j N]
set -euo pipefail

cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)
while getopts "j:" opt; do
    case "$opt" in
      j) jobs="$OPTARG" ;;
      *) echo "usage: $0 [-j N]" >&2; exit 2 ;;
    esac
done

run() {
    echo "ci: $*" >&2
    "$@"
}

run cmake --preset default
run cmake --build --preset default -j "$jobs"

run cmake --preset check
run cmake --build --preset check -j "$jobs"

# Tier-1: the full suite on the default build.
run ctest --preset default -j "$jobs"

# Snapshot/restore suites under sanitizers + deep audits.
run ctest --preset check -L checkpoint -j "$jobs"

# Checkpoint corruption fuzz: every flipped bit must be rejected.
run ./build/src/tools/cawa_fuzz --seeds 10 --ckpt-seeds 5

echo "ci: all green" >&2
