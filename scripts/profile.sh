#!/bin/sh
# Profile a simulator binary from the profile preset (RelWithDebInfo,
# frame pointers kept, LTO off -- the optimization level of the
# default build with sample stacks that still unwind and attribute to
# real functions).
#
# Usage: scripts/profile.sh [-o DIR] <command> [args...]
#   -o DIR   where the profile lands (default: build-profile/prof)
#
# Example:
#   cmake --preset profile && cmake --build --preset profile -j"$(nproc)"
#   scripts/profile.sh build-profile/src/tools/cawa_sweep \
#       --workloads tpacf --schedulers gcaws --policies cacp \
#       --scale 2 --out /tmp/prof-report
#
# Uses `perf record` (call graphs via frame pointers) when available
# and falls back to `gprofng collect app` otherwise; prints the
# report/top-functions command for whichever tool ran.
set -eu

cd "$(dirname "$0")/.."

out=build-profile/prof
if [ "${1-}" = "-o" ]; then
    out=$2
    shift 2
fi
if [ $# -eq 0 ]; then
    sed -n '2,19p' "$0" | sed 's/^# \{0,1\}//'
    exit 1
fi

mkdir -p "$(dirname "$out")"

if command -v perf >/dev/null 2>&1; then
    perf record -g --call-graph fp -o "$out.data" -- "$@"
    echo "profile written: $out.data"
    echo "view with: perf report -i $out.data"
elif command -v gprofng >/dev/null 2>&1; then
    rm -rf "$out.er"
    gprofng collect app -o "$out.er" "$@"
    echo "profile written: $out.er"
    echo "view with: gprofng display text -functions $out.er"
else
    echo "error: neither perf nor gprofng found in PATH" >&2
    exit 1
fi
