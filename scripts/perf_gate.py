#!/usr/bin/env python3
"""Performance-regression gate for bench_sim_speed.

Compares a freshly measured ``cawa-bench-sim-speed-v1`` report against
the committed baseline (``bench/baselines/BENCH_sim_speed.json``):

* ``simCycles`` must match the baseline EXACTLY for every workload --
  the simulator is deterministic, so any drift is a correctness
  regression, not noise, and fails the gate regardless of tolerance.
* the fast-forward ``speedup`` ratio (event-driven vs flat ticking of
  the same run, measured on the same machine, so it is comparable
  across machines) must stay within the tolerance of the baseline:
  ``new >= old * (1 - tol)``.
* the ``parallelSpeedup`` ratio (fast-forward + the parallel-SM
  fork-join team vs flat) is gated the same way, plus an absolute
  floor: at least half the workloads must reach 1.5x. Both parallel
  checks apply only when the measuring machine has at least
  ``simThreads`` hardware cores (``hardwareConcurrency`` in the
  report) -- on smaller machines the team is oversubscribed and the
  ratio measures the scheduler, not the simulator -- and when the
  baseline carries the parallel columns at a matching thread count.
* absolute cycles/sec throughputs are machine-dependent and reported
  for information only.

Tolerance comes from ``CAWA_PERF_TOLERANCE`` (default 15%); both
``15`` and ``0.15`` spellings are accepted. A per-workload delta table
is printed and, when ``GITHUB_STEP_SUMMARY`` is set, appended to the
job summary as Markdown.

Usage: perf_gate.py BASELINE.json CURRENT.json
"""

import json
import math
import os
import sys


def parse_tolerance(raw):
    """Validate CAWA_PERF_TOLERANCE: a percentage in [0, 100) or a
    fraction in [0, 1). Anything else (garbage, nan/inf, negatives,
    >= 100%) is a configuration error worth a precise message --
    a silently-misread tolerance would turn the gate off."""
    try:
        tol = float(raw)
    except ValueError:
        sys.exit(
            f"perf_gate: CAWA_PERF_TOLERANCE {raw!r} is not a number "
            "(use a percentage like 15 or a fraction like 0.15)"
        )
    if math.isnan(tol) or math.isinf(tol):
        sys.exit(
            f"perf_gate: CAWA_PERF_TOLERANCE {raw!r} is not finite"
        )
    if tol < 0.0:
        sys.exit(
            f"perf_gate: CAWA_PERF_TOLERANCE {raw!r} is negative; a "
            "regression allowance cannot be below 0"
        )
    if tol >= 1.0:  # "15" means 15%
        tol /= 100.0
    if tol >= 1.0:
        sys.exit(
            f"perf_gate: CAWA_PERF_TOLERANCE {raw!r} allows any "
            "regression (must be below 100%/1.0)"
        )
    return tol


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        sys.exit(f"perf_gate: cannot read {path}: {err}")
    if doc.get("schema") != "cawa-bench-sim-speed-v1":
        sys.exit(
            f"perf_gate: {path}: expected schema "
            f"cawa-bench-sim-speed-v1, got {doc.get('schema')!r}"
        )
    return {e["workload"]: e for e in doc["entries"]}, doc


def fmt_rate(rate):
    return f"{rate / 1e6:.2f}M" if rate >= 1e6 else f"{rate / 1e3:.0f}k"


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__.strip().splitlines()[-1])
    tol = parse_tolerance(os.environ.get("CAWA_PERF_TOLERANCE", "15"))
    base_entries, base_doc = load(sys.argv[1])
    cur_entries, cur_doc = load(sys.argv[2])

    for key in ("scale", "config"):
        if base_doc.get(key) != cur_doc.get(key):
            sys.exit(
                f"perf_gate: {key} mismatch: baseline "
                f"{base_doc.get(key)!r} vs current {cur_doc.get(key)!r}"
            )

    # The parallel-SM floor is only meaningful when the machine can
    # actually run the team in parallel and the baseline has the
    # parallel columns to compare against.
    threads = cur_doc.get("simThreads", 0)
    cores = cur_doc.get("hardwareConcurrency", 0)
    gate_parallel = (
        threads > 0
        and cores >= threads
        and base_doc.get("simThreads") == threads
        and all("parallelSpeedup" in e for e in base_entries.values())
    )
    if not gate_parallel:
        reason = (
            f"{cores} cores < {threads} sim threads"
            if threads and cores < threads
            else "baseline lacks comparable parallel columns"
        )
        print(f"perf_gate: parallel-SM speedup not gated ({reason})")

    failures = []
    rows = []
    par_floor_met = 0
    par_gated = 0
    for name, base in sorted(base_entries.items()):
        cur = cur_entries.get(name)
        if cur is None:
            failures.append(f"{name}: missing from current report")
            continue
        status = "ok"
        if cur["simCycles"] != base["simCycles"]:
            status = "CYCLES DIVERGED"
            failures.append(
                f"{name}: simCycles {cur['simCycles']} != baseline "
                f"{base['simCycles']} (determinism regression)"
            )
        floor = base["speedup"] * (1.0 - tol)
        if cur["speedup"] < floor:
            status = "SPEEDUP REGRESSED"
            failures.append(
                f"{name}: fast-forward speedup {cur['speedup']:.2f}x "
                f"< floor {floor:.2f}x "
                f"(baseline {base['speedup']:.2f}x, tol {tol:.0%})"
            )
        if gate_parallel:
            par_gated += 1
            par_now = cur.get("parallelSpeedup", 0.0)
            par_base = base["parallelSpeedup"]
            par_floor = par_base * (1.0 - tol)
            if par_now < par_floor:
                status = "PARALLEL REGRESSED"
                failures.append(
                    f"{name}: parallel-SM speedup {par_now:.2f}x "
                    f"< floor {par_floor:.2f}x "
                    f"(baseline {par_base:.2f}x, tol {tol:.0%})"
                )
            if par_now >= 1.5:
                par_floor_met += 1
        delta = (
            (cur["speedup"] - base["speedup"]) / base["speedup"]
            if base["speedup"]
            else 0.0
        )
        par_cell = (
            f"{cur['parallelSpeedup']:.2f}x"
            if "parallelSpeedup" in cur
            else "-"
        )
        rows.append(
            (
                name,
                f"{cur['simCycles']}",
                f"{base['speedup']:.2f}x",
                f"{cur['speedup']:.2f}x",
                f"{delta:+.1%}",
                par_cell,
                fmt_rate(cur["cyclesPerSecFastForward"]),
                status,
            )
        )
    for name in sorted(set(cur_entries) - set(base_entries)):
        rows.append(
            (name, f"{cur_entries[name]['simCycles']}", "-", "-", "-",
             "-",
             fmt_rate(cur_entries[name]["cyclesPerSecFastForward"]),
             "new (not gated)")
        )

    if gate_parallel and par_gated and par_floor_met * 2 < par_gated:
        failures.append(
            f"parallel-SM speedup reaches 1.5x on only "
            f"{par_floor_met} of {par_gated} workloads "
            f"(needs at least half)"
        )

    header = (
        "workload", "simCycles", "base speedup", "now", "delta",
        "par now", "cyc/s (info)", "status",
    )
    widths = [
        max(len(r[i]) for r in rows + [header]) for i in range(len(header))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines += ["  ".join(c.ljust(w) for c, w in zip(r, widths)) for r in rows]
    table = "\n".join(lines)
    print(f"perf_gate: tolerance {tol:.0%} on fast-forward speedup\n")
    print(table)

    summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if summary:
        md = ["### Perf gate (bench_sim_speed)", ""]
        md.append("| " + " | ".join(header) + " |")
        md.append("|" + "|".join("---" for _ in header) + "|")
        md += ["| " + " | ".join(r) + " |" for r in rows]
        md.append("")
        md.append(f"Tolerance: {tol:.0%} on the fast-forward speedup "
                  "ratio; simCycles must match exactly.")
        if gate_parallel:
            md.append(
                f"Parallel-SM gate active ({threads} threads on "
                f"{cores} cores): tolerance floor per workload plus "
                "1.5x on at least half."
            )
        else:
            md.append("Parallel-SM gate inactive on this machine.")
        with open(summary, "a", encoding="utf-8") as f:
            f.write("\n".join(md) + "\n")

    if failures:
        print("\nperf_gate: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print("\nperf_gate: PASS")


if __name__ == "__main__":
    main()
