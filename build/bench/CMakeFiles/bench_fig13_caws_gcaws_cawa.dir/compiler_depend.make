# Empty compiler generated dependencies file for bench_fig13_caws_gcaws_cawa.
# This may be replaced when dependencies are built.
