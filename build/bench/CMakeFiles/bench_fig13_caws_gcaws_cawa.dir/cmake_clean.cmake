file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_caws_gcaws_cawa.dir/bench_fig13_caws_gcaws_cawa.cc.o"
  "CMakeFiles/bench_fig13_caws_gcaws_cawa.dir/bench_fig13_caws_gcaws_cawa.cc.o.d"
  "bench_fig13_caws_gcaws_cawa"
  "bench_fig13_caws_gcaws_cawa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_caws_gcaws_cawa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
