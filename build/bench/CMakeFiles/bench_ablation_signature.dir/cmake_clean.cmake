file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_signature.dir/bench_ablation_signature.cc.o"
  "CMakeFiles/bench_ablation_signature.dir/bench_ablation_signature.cc.o.d"
  "bench_ablation_signature"
  "bench_ablation_signature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_signature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
