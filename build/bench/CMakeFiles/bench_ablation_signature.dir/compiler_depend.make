# Empty compiler generated dependencies file for bench_ablation_signature.
# This may be replaced when dependencies are built.
