file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_crit_hitrate.dir/bench_fig14_crit_hitrate.cc.o"
  "CMakeFiles/bench_fig14_crit_hitrate.dir/bench_fig14_crit_hitrate.cc.o.d"
  "bench_fig14_crit_hitrate"
  "bench_fig14_crit_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_crit_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
