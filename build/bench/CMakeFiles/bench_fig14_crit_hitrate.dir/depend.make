# Empty dependencies file for bench_fig14_crit_hitrate.
# This may be replaced when dependencies are built.
