file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_disparity.dir/bench_fig01_disparity.cc.o"
  "CMakeFiles/bench_fig01_disparity.dir/bench_fig01_disparity.cc.o.d"
  "bench_fig01_disparity"
  "bench_fig01_disparity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_disparity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
