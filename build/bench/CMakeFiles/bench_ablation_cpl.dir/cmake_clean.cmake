file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cpl.dir/bench_ablation_cpl.cc.o"
  "CMakeFiles/bench_ablation_cpl.dir/bench_ablation_cpl.cc.o.d"
  "bench_ablation_cpl"
  "bench_ablation_cpl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cpl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
