# Empty compiler generated dependencies file for bench_ablation_cpl.
# This may be replaced when dependencies are built.
