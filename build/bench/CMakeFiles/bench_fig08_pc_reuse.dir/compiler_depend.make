# Empty compiler generated dependencies file for bench_fig08_pc_reuse.
# This may be replaced when dependencies are built.
