file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_pc_reuse.dir/bench_fig08_pc_reuse.cc.o"
  "CMakeFiles/bench_fig08_pc_reuse.dir/bench_fig08_pc_reuse.cc.o.d"
  "bench_fig08_pc_reuse"
  "bench_fig08_pc_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_pc_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
