# Empty dependencies file for bench_fig10_mpki.
# This may be replaced when dependencies are built.
