file(REMOVE_RECURSE
  "CMakeFiles/bench_fig17_cacp_ipc.dir/bench_fig17_cacp_ipc.cc.o"
  "CMakeFiles/bench_fig17_cacp_ipc.dir/bench_fig17_cacp_ipc.cc.o.d"
  "bench_fig17_cacp_ipc"
  "bench_fig17_cacp_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_cacp_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
