# Empty compiler generated dependencies file for bench_fig17_cacp_ipc.
# This may be replaced when dependencies are built.
