file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_cacp_mpki.dir/bench_fig16_cacp_mpki.cc.o"
  "CMakeFiles/bench_fig16_cacp_mpki.dir/bench_fig16_cacp_mpki.cc.o.d"
  "bench_fig16_cacp_mpki"
  "bench_fig16_cacp_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_cacp_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
