# Empty dependencies file for bench_fig16_cacp_mpki.
# This may be replaced when dependencies are built.
