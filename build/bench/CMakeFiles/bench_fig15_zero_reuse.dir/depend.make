# Empty dependencies file for bench_fig15_zero_reuse.
# This may be replaced when dependencies are built.
