file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_zero_reuse.dir/bench_fig15_zero_reuse.cc.o"
  "CMakeFiles/bench_fig15_zero_reuse.dir/bench_fig15_zero_reuse.cc.o.d"
  "bench_fig15_zero_reuse"
  "bench_fig15_zero_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_zero_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
