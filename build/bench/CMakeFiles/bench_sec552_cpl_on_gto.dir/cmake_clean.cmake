file(REMOVE_RECURSE
  "CMakeFiles/bench_sec552_cpl_on_gto.dir/bench_sec552_cpl_on_gto.cc.o"
  "CMakeFiles/bench_sec552_cpl_on_gto.dir/bench_sec552_cpl_on_gto.cc.o.d"
  "bench_sec552_cpl_on_gto"
  "bench_sec552_cpl_on_gto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec552_cpl_on_gto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
