# Empty compiler generated dependencies file for bench_sec552_cpl_on_gto.
# This may be replaced when dependencies are built.
