# Empty dependencies file for bench_fig02_bfs_breakdown.
# This may be replaced when dependencies are built.
