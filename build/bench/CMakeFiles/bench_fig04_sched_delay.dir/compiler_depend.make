# Empty compiler generated dependencies file for bench_fig04_sched_delay.
# This may be replaced when dependencies are built.
