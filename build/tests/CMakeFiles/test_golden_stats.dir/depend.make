# Empty dependencies file for test_golden_stats.
# This may be replaced when dependencies are built.
