file(REMOVE_RECURSE
  "CMakeFiles/test_golden_stats.dir/test_golden_stats.cc.o"
  "CMakeFiles/test_golden_stats.dir/test_golden_stats.cc.o.d"
  "test_golden_stats"
  "test_golden_stats.pdb"
  "test_golden_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golden_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
