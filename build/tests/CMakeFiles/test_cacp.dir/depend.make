# Empty dependencies file for test_cacp.
# This may be replaced when dependencies are built.
