file(REMOVE_RECURSE
  "CMakeFiles/test_cacp.dir/test_cacp.cc.o"
  "CMakeFiles/test_cacp.dir/test_cacp.cc.o.d"
  "test_cacp"
  "test_cacp.pdb"
  "test_cacp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cacp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
