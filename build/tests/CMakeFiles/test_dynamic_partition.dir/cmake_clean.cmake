file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic_partition.dir/test_dynamic_partition.cc.o"
  "CMakeFiles/test_dynamic_partition.dir/test_dynamic_partition.cc.o.d"
  "test_dynamic_partition"
  "test_dynamic_partition.pdb"
  "test_dynamic_partition[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
