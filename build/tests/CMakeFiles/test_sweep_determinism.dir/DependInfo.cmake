
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_sweep_determinism.cc" "tests/CMakeFiles/test_sweep_determinism.dir/test_sweep_determinism.cc.o" "gcc" "tests/CMakeFiles/test_sweep_determinism.dir/test_sweep_determinism.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cawa_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_sm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_cawa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
