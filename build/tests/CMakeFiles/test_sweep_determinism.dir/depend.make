# Empty dependencies file for test_sweep_determinism.
# This may be replaced when dependencies are built.
