file(REMOVE_RECURSE
  "CMakeFiles/test_sweep_determinism.dir/test_sweep_determinism.cc.o"
  "CMakeFiles/test_sweep_determinism.dir/test_sweep_determinism.cc.o.d"
  "test_sweep_determinism"
  "test_sweep_determinism.pdb"
  "test_sweep_determinism[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sweep_determinism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
