file(REMOVE_RECURSE
  "CMakeFiles/test_report_json.dir/test_report_json.cc.o"
  "CMakeFiles/test_report_json.dir/test_report_json.cc.o.d"
  "test_report_json"
  "test_report_json.pdb"
  "test_report_json[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
