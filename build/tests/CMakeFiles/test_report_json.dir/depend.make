# Empty dependencies file for test_report_json.
# This may be replaced when dependencies are built.
