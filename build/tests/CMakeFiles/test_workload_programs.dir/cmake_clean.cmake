file(REMOVE_RECURSE
  "CMakeFiles/test_workload_programs.dir/test_workload_programs.cc.o"
  "CMakeFiles/test_workload_programs.dir/test_workload_programs.cc.o.d"
  "test_workload_programs"
  "test_workload_programs.pdb"
  "test_workload_programs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workload_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
