# Empty compiler generated dependencies file for test_workload_programs.
# This may be replaced when dependencies are built.
