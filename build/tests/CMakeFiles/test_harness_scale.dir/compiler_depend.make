# Empty compiler generated dependencies file for test_harness_scale.
# This may be replaced when dependencies are built.
