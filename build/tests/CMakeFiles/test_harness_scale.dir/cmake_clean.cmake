file(REMOVE_RECURSE
  "CMakeFiles/test_harness_scale.dir/test_harness_scale.cc.o"
  "CMakeFiles/test_harness_scale.dir/test_harness_scale.cc.o.d"
  "test_harness_scale"
  "test_harness_scale.pdb"
  "test_harness_scale[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_harness_scale.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
