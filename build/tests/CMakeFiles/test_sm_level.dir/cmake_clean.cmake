file(REMOVE_RECURSE
  "CMakeFiles/test_sm_level.dir/test_sm_level.cc.o"
  "CMakeFiles/test_sm_level.dir/test_sm_level.cc.o.d"
  "test_sm_level"
  "test_sm_level.pdb"
  "test_sm_level[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sm_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
