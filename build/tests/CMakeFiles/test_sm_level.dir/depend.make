# Empty dependencies file for test_sm_level.
# This may be replaced when dependencies are built.
