file(REMOVE_RECURSE
  "CMakeFiles/test_mem_timing.dir/test_mem_timing.cc.o"
  "CMakeFiles/test_mem_timing.dir/test_mem_timing.cc.o.d"
  "test_mem_timing"
  "test_mem_timing.pdb"
  "test_mem_timing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mem_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
