# Empty compiler generated dependencies file for test_mem_timing.
# This may be replaced when dependencies are built.
