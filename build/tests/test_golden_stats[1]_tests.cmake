add_test([=[GoldenStats.MatchesCheckedInBaseline]=]  /root/repo/build/tests/test_golden_stats [==[--gtest_filter=GoldenStats.MatchesCheckedInBaseline]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[GoldenStats.MatchesCheckedInBaseline]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  test_golden_stats_TESTS GoldenStats.MatchesCheckedInBaseline)
