# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_assembler[1]_include.cmake")
include("/root/repo/build/tests/test_cache_properties[1]_include.cmake")
include("/root/repo/build/tests/test_cacp[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_criticality[1]_include.cmake")
include("/root/repo/build/tests/test_dynamic_partition[1]_include.cmake")
include("/root/repo/build/tests/test_functional[1]_include.cmake")
include("/root/repo/build/tests/test_golden_stats[1]_include.cmake")
include("/root/repo/build/tests/test_harness_scale[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_isa[1]_include.cmake")
include("/root/repo/build/tests/test_mem[1]_include.cmake")
include("/root/repo/build/tests/test_mem_timing[1]_include.cmake")
include("/root/repo/build/tests/test_oracle[1]_include.cmake")
include("/root/repo/build/tests/test_paper_shapes[1]_include.cmake")
include("/root/repo/build/tests/test_random_programs[1]_include.cmake")
include("/root/repo/build/tests/test_report_json[1]_include.cmake")
include("/root/repo/build/tests/test_schedulers[1]_include.cmake")
include("/root/repo/build/tests/test_simt_stack[1]_include.cmake")
include("/root/repo/build/tests/test_sm_level[1]_include.cmake")
include("/root/repo/build/tests/test_sweep_determinism[1]_include.cmake")
include("/root/repo/build/tests/test_warp[1]_include.cmake")
include("/root/repo/build/tests/test_workload_programs[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
