
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/cacp_policy.cc" "src/CMakeFiles/cawa_mem.dir/mem/cacp_policy.cc.o" "gcc" "src/CMakeFiles/cawa_mem.dir/mem/cacp_policy.cc.o.d"
  "/root/repo/src/mem/coalescer.cc" "src/CMakeFiles/cawa_mem.dir/mem/coalescer.cc.o" "gcc" "src/CMakeFiles/cawa_mem.dir/mem/coalescer.cc.o.d"
  "/root/repo/src/mem/dram.cc" "src/CMakeFiles/cawa_mem.dir/mem/dram.cc.o" "gcc" "src/CMakeFiles/cawa_mem.dir/mem/dram.cc.o.d"
  "/root/repo/src/mem/interconnect.cc" "src/CMakeFiles/cawa_mem.dir/mem/interconnect.cc.o" "gcc" "src/CMakeFiles/cawa_mem.dir/mem/interconnect.cc.o.d"
  "/root/repo/src/mem/l1d_cache.cc" "src/CMakeFiles/cawa_mem.dir/mem/l1d_cache.cc.o" "gcc" "src/CMakeFiles/cawa_mem.dir/mem/l1d_cache.cc.o.d"
  "/root/repo/src/mem/l2_cache.cc" "src/CMakeFiles/cawa_mem.dir/mem/l2_cache.cc.o" "gcc" "src/CMakeFiles/cawa_mem.dir/mem/l2_cache.cc.o.d"
  "/root/repo/src/mem/memory_image.cc" "src/CMakeFiles/cawa_mem.dir/mem/memory_image.cc.o" "gcc" "src/CMakeFiles/cawa_mem.dir/mem/memory_image.cc.o.d"
  "/root/repo/src/mem/replacement.cc" "src/CMakeFiles/cawa_mem.dir/mem/replacement.cc.o" "gcc" "src/CMakeFiles/cawa_mem.dir/mem/replacement.cc.o.d"
  "/root/repo/src/mem/tag_array.cc" "src/CMakeFiles/cawa_mem.dir/mem/tag_array.cc.o" "gcc" "src/CMakeFiles/cawa_mem.dir/mem/tag_array.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cawa_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_cawa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
