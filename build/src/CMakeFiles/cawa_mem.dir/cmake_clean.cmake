file(REMOVE_RECURSE
  "CMakeFiles/cawa_mem.dir/mem/cacp_policy.cc.o"
  "CMakeFiles/cawa_mem.dir/mem/cacp_policy.cc.o.d"
  "CMakeFiles/cawa_mem.dir/mem/coalescer.cc.o"
  "CMakeFiles/cawa_mem.dir/mem/coalescer.cc.o.d"
  "CMakeFiles/cawa_mem.dir/mem/dram.cc.o"
  "CMakeFiles/cawa_mem.dir/mem/dram.cc.o.d"
  "CMakeFiles/cawa_mem.dir/mem/interconnect.cc.o"
  "CMakeFiles/cawa_mem.dir/mem/interconnect.cc.o.d"
  "CMakeFiles/cawa_mem.dir/mem/l1d_cache.cc.o"
  "CMakeFiles/cawa_mem.dir/mem/l1d_cache.cc.o.d"
  "CMakeFiles/cawa_mem.dir/mem/l2_cache.cc.o"
  "CMakeFiles/cawa_mem.dir/mem/l2_cache.cc.o.d"
  "CMakeFiles/cawa_mem.dir/mem/memory_image.cc.o"
  "CMakeFiles/cawa_mem.dir/mem/memory_image.cc.o.d"
  "CMakeFiles/cawa_mem.dir/mem/replacement.cc.o"
  "CMakeFiles/cawa_mem.dir/mem/replacement.cc.o.d"
  "CMakeFiles/cawa_mem.dir/mem/tag_array.cc.o"
  "CMakeFiles/cawa_mem.dir/mem/tag_array.cc.o.d"
  "libcawa_mem.a"
  "libcawa_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cawa_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
