file(REMOVE_RECURSE
  "libcawa_mem.a"
)
