# Empty compiler generated dependencies file for cawa_mem.
# This may be replaced when dependencies are built.
