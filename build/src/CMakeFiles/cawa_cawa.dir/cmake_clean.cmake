file(REMOVE_RECURSE
  "CMakeFiles/cawa_cawa.dir/cawa/ccbp.cc.o"
  "CMakeFiles/cawa_cawa.dir/cawa/ccbp.cc.o.d"
  "CMakeFiles/cawa_cawa.dir/cawa/criticality.cc.o"
  "CMakeFiles/cawa_cawa.dir/cawa/criticality.cc.o.d"
  "CMakeFiles/cawa_cawa.dir/cawa/ship.cc.o"
  "CMakeFiles/cawa_cawa.dir/cawa/ship.cc.o.d"
  "libcawa_cawa.a"
  "libcawa_cawa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cawa_cawa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
