# Empty compiler generated dependencies file for cawa_cawa.
# This may be replaced when dependencies are built.
