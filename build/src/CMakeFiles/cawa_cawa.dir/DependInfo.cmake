
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cawa/ccbp.cc" "src/CMakeFiles/cawa_cawa.dir/cawa/ccbp.cc.o" "gcc" "src/CMakeFiles/cawa_cawa.dir/cawa/ccbp.cc.o.d"
  "/root/repo/src/cawa/criticality.cc" "src/CMakeFiles/cawa_cawa.dir/cawa/criticality.cc.o" "gcc" "src/CMakeFiles/cawa_cawa.dir/cawa/criticality.cc.o.d"
  "/root/repo/src/cawa/ship.cc" "src/CMakeFiles/cawa_cawa.dir/cawa/ship.cc.o" "gcc" "src/CMakeFiles/cawa_cawa.dir/cawa/ship.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cawa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
