file(REMOVE_RECURSE
  "libcawa_cawa.a"
)
