# Empty compiler generated dependencies file for cawa_common.
# This may be replaced when dependencies are built.
