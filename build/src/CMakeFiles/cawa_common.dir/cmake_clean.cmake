file(REMOVE_RECURSE
  "CMakeFiles/cawa_common.dir/common/rng.cc.o"
  "CMakeFiles/cawa_common.dir/common/rng.cc.o.d"
  "CMakeFiles/cawa_common.dir/common/table.cc.o"
  "CMakeFiles/cawa_common.dir/common/table.cc.o.d"
  "libcawa_common.a"
  "libcawa_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cawa_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
