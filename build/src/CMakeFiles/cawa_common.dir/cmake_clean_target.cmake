file(REMOVE_RECURSE
  "libcawa_common.a"
)
