file(REMOVE_RECURSE
  "CMakeFiles/cawa_isa.dir/isa/assembler.cc.o"
  "CMakeFiles/cawa_isa.dir/isa/assembler.cc.o.d"
  "CMakeFiles/cawa_isa.dir/isa/instruction.cc.o"
  "CMakeFiles/cawa_isa.dir/isa/instruction.cc.o.d"
  "CMakeFiles/cawa_isa.dir/isa/program.cc.o"
  "CMakeFiles/cawa_isa.dir/isa/program.cc.o.d"
  "CMakeFiles/cawa_isa.dir/isa/program_builder.cc.o"
  "CMakeFiles/cawa_isa.dir/isa/program_builder.cc.o.d"
  "libcawa_isa.a"
  "libcawa_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cawa_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
