# Empty dependencies file for cawa_isa.
# This may be replaced when dependencies are built.
