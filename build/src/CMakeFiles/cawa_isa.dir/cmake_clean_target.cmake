file(REMOVE_RECURSE
  "libcawa_isa.a"
)
