file(REMOVE_RECURSE
  "CMakeFiles/cawa_sim.dir/sim/functional.cc.o"
  "CMakeFiles/cawa_sim.dir/sim/functional.cc.o.d"
  "CMakeFiles/cawa_sim.dir/sim/gpu.cc.o"
  "CMakeFiles/cawa_sim.dir/sim/gpu.cc.o.d"
  "CMakeFiles/cawa_sim.dir/sim/gpu_config.cc.o"
  "CMakeFiles/cawa_sim.dir/sim/gpu_config.cc.o.d"
  "CMakeFiles/cawa_sim.dir/sim/oracle.cc.o"
  "CMakeFiles/cawa_sim.dir/sim/oracle.cc.o.d"
  "CMakeFiles/cawa_sim.dir/sim/report.cc.o"
  "CMakeFiles/cawa_sim.dir/sim/report.cc.o.d"
  "CMakeFiles/cawa_sim.dir/sim/report_json.cc.o"
  "CMakeFiles/cawa_sim.dir/sim/report_json.cc.o.d"
  "CMakeFiles/cawa_sim.dir/sim/sweep.cc.o"
  "CMakeFiles/cawa_sim.dir/sim/sweep.cc.o.d"
  "libcawa_sim.a"
  "libcawa_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cawa_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
