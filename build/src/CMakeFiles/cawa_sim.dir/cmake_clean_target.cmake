file(REMOVE_RECURSE
  "libcawa_sim.a"
)
