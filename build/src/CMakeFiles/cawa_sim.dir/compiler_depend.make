# Empty compiler generated dependencies file for cawa_sim.
# This may be replaced when dependencies are built.
