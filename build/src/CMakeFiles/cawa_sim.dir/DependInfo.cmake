
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/functional.cc" "src/CMakeFiles/cawa_sim.dir/sim/functional.cc.o" "gcc" "src/CMakeFiles/cawa_sim.dir/sim/functional.cc.o.d"
  "/root/repo/src/sim/gpu.cc" "src/CMakeFiles/cawa_sim.dir/sim/gpu.cc.o" "gcc" "src/CMakeFiles/cawa_sim.dir/sim/gpu.cc.o.d"
  "/root/repo/src/sim/gpu_config.cc" "src/CMakeFiles/cawa_sim.dir/sim/gpu_config.cc.o" "gcc" "src/CMakeFiles/cawa_sim.dir/sim/gpu_config.cc.o.d"
  "/root/repo/src/sim/oracle.cc" "src/CMakeFiles/cawa_sim.dir/sim/oracle.cc.o" "gcc" "src/CMakeFiles/cawa_sim.dir/sim/oracle.cc.o.d"
  "/root/repo/src/sim/report.cc" "src/CMakeFiles/cawa_sim.dir/sim/report.cc.o" "gcc" "src/CMakeFiles/cawa_sim.dir/sim/report.cc.o.d"
  "/root/repo/src/sim/report_json.cc" "src/CMakeFiles/cawa_sim.dir/sim/report_json.cc.o" "gcc" "src/CMakeFiles/cawa_sim.dir/sim/report_json.cc.o.d"
  "/root/repo/src/sim/sweep.cc" "src/CMakeFiles/cawa_sim.dir/sim/sweep.cc.o" "gcc" "src/CMakeFiles/cawa_sim.dir/sim/sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cawa_sm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_cawa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
