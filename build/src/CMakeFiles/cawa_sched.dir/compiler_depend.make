# Empty compiler generated dependencies file for cawa_sched.
# This may be replaced when dependencies are built.
