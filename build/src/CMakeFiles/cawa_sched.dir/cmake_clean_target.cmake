file(REMOVE_RECURSE
  "libcawa_sched.a"
)
