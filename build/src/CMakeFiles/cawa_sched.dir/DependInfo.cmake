
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/caws_oracle.cc" "src/CMakeFiles/cawa_sched.dir/sched/caws_oracle.cc.o" "gcc" "src/CMakeFiles/cawa_sched.dir/sched/caws_oracle.cc.o.d"
  "/root/repo/src/sched/gcaws.cc" "src/CMakeFiles/cawa_sched.dir/sched/gcaws.cc.o" "gcc" "src/CMakeFiles/cawa_sched.dir/sched/gcaws.cc.o.d"
  "/root/repo/src/sched/gto.cc" "src/CMakeFiles/cawa_sched.dir/sched/gto.cc.o" "gcc" "src/CMakeFiles/cawa_sched.dir/sched/gto.cc.o.d"
  "/root/repo/src/sched/lrr.cc" "src/CMakeFiles/cawa_sched.dir/sched/lrr.cc.o" "gcc" "src/CMakeFiles/cawa_sched.dir/sched/lrr.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "src/CMakeFiles/cawa_sched.dir/sched/scheduler.cc.o" "gcc" "src/CMakeFiles/cawa_sched.dir/sched/scheduler.cc.o.d"
  "/root/repo/src/sched/two_level.cc" "src/CMakeFiles/cawa_sched.dir/sched/two_level.cc.o" "gcc" "src/CMakeFiles/cawa_sched.dir/sched/two_level.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cawa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
