file(REMOVE_RECURSE
  "CMakeFiles/cawa_sched.dir/sched/caws_oracle.cc.o"
  "CMakeFiles/cawa_sched.dir/sched/caws_oracle.cc.o.d"
  "CMakeFiles/cawa_sched.dir/sched/gcaws.cc.o"
  "CMakeFiles/cawa_sched.dir/sched/gcaws.cc.o.d"
  "CMakeFiles/cawa_sched.dir/sched/gto.cc.o"
  "CMakeFiles/cawa_sched.dir/sched/gto.cc.o.d"
  "CMakeFiles/cawa_sched.dir/sched/lrr.cc.o"
  "CMakeFiles/cawa_sched.dir/sched/lrr.cc.o.d"
  "CMakeFiles/cawa_sched.dir/sched/scheduler.cc.o"
  "CMakeFiles/cawa_sched.dir/sched/scheduler.cc.o.d"
  "CMakeFiles/cawa_sched.dir/sched/two_level.cc.o"
  "CMakeFiles/cawa_sched.dir/sched/two_level.cc.o.d"
  "libcawa_sched.a"
  "libcawa_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cawa_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
