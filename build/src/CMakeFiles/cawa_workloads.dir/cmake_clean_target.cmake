file(REMOVE_RECURSE
  "libcawa_workloads.a"
)
