file(REMOVE_RECURSE
  "CMakeFiles/cawa_workloads.dir/workloads/backprop.cc.o"
  "CMakeFiles/cawa_workloads.dir/workloads/backprop.cc.o.d"
  "CMakeFiles/cawa_workloads.dir/workloads/bfs.cc.o"
  "CMakeFiles/cawa_workloads.dir/workloads/bfs.cc.o.d"
  "CMakeFiles/cawa_workloads.dir/workloads/btree.cc.o"
  "CMakeFiles/cawa_workloads.dir/workloads/btree.cc.o.d"
  "CMakeFiles/cawa_workloads.dir/workloads/heartwall.cc.o"
  "CMakeFiles/cawa_workloads.dir/workloads/heartwall.cc.o.d"
  "CMakeFiles/cawa_workloads.dir/workloads/kmeans.cc.o"
  "CMakeFiles/cawa_workloads.dir/workloads/kmeans.cc.o.d"
  "CMakeFiles/cawa_workloads.dir/workloads/needle.cc.o"
  "CMakeFiles/cawa_workloads.dir/workloads/needle.cc.o.d"
  "CMakeFiles/cawa_workloads.dir/workloads/particle.cc.o"
  "CMakeFiles/cawa_workloads.dir/workloads/particle.cc.o.d"
  "CMakeFiles/cawa_workloads.dir/workloads/pathfinder.cc.o"
  "CMakeFiles/cawa_workloads.dir/workloads/pathfinder.cc.o.d"
  "CMakeFiles/cawa_workloads.dir/workloads/registry.cc.o"
  "CMakeFiles/cawa_workloads.dir/workloads/registry.cc.o.d"
  "CMakeFiles/cawa_workloads.dir/workloads/srad.cc.o"
  "CMakeFiles/cawa_workloads.dir/workloads/srad.cc.o.d"
  "CMakeFiles/cawa_workloads.dir/workloads/streamcluster.cc.o"
  "CMakeFiles/cawa_workloads.dir/workloads/streamcluster.cc.o.d"
  "CMakeFiles/cawa_workloads.dir/workloads/sweep_jobs.cc.o"
  "CMakeFiles/cawa_workloads.dir/workloads/sweep_jobs.cc.o.d"
  "CMakeFiles/cawa_workloads.dir/workloads/tpacf.cc.o"
  "CMakeFiles/cawa_workloads.dir/workloads/tpacf.cc.o.d"
  "CMakeFiles/cawa_workloads.dir/workloads/workload.cc.o"
  "CMakeFiles/cawa_workloads.dir/workloads/workload.cc.o.d"
  "libcawa_workloads.a"
  "libcawa_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cawa_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
