
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/backprop.cc" "src/CMakeFiles/cawa_workloads.dir/workloads/backprop.cc.o" "gcc" "src/CMakeFiles/cawa_workloads.dir/workloads/backprop.cc.o.d"
  "/root/repo/src/workloads/bfs.cc" "src/CMakeFiles/cawa_workloads.dir/workloads/bfs.cc.o" "gcc" "src/CMakeFiles/cawa_workloads.dir/workloads/bfs.cc.o.d"
  "/root/repo/src/workloads/btree.cc" "src/CMakeFiles/cawa_workloads.dir/workloads/btree.cc.o" "gcc" "src/CMakeFiles/cawa_workloads.dir/workloads/btree.cc.o.d"
  "/root/repo/src/workloads/heartwall.cc" "src/CMakeFiles/cawa_workloads.dir/workloads/heartwall.cc.o" "gcc" "src/CMakeFiles/cawa_workloads.dir/workloads/heartwall.cc.o.d"
  "/root/repo/src/workloads/kmeans.cc" "src/CMakeFiles/cawa_workloads.dir/workloads/kmeans.cc.o" "gcc" "src/CMakeFiles/cawa_workloads.dir/workloads/kmeans.cc.o.d"
  "/root/repo/src/workloads/needle.cc" "src/CMakeFiles/cawa_workloads.dir/workloads/needle.cc.o" "gcc" "src/CMakeFiles/cawa_workloads.dir/workloads/needle.cc.o.d"
  "/root/repo/src/workloads/particle.cc" "src/CMakeFiles/cawa_workloads.dir/workloads/particle.cc.o" "gcc" "src/CMakeFiles/cawa_workloads.dir/workloads/particle.cc.o.d"
  "/root/repo/src/workloads/pathfinder.cc" "src/CMakeFiles/cawa_workloads.dir/workloads/pathfinder.cc.o" "gcc" "src/CMakeFiles/cawa_workloads.dir/workloads/pathfinder.cc.o.d"
  "/root/repo/src/workloads/registry.cc" "src/CMakeFiles/cawa_workloads.dir/workloads/registry.cc.o" "gcc" "src/CMakeFiles/cawa_workloads.dir/workloads/registry.cc.o.d"
  "/root/repo/src/workloads/srad.cc" "src/CMakeFiles/cawa_workloads.dir/workloads/srad.cc.o" "gcc" "src/CMakeFiles/cawa_workloads.dir/workloads/srad.cc.o.d"
  "/root/repo/src/workloads/streamcluster.cc" "src/CMakeFiles/cawa_workloads.dir/workloads/streamcluster.cc.o" "gcc" "src/CMakeFiles/cawa_workloads.dir/workloads/streamcluster.cc.o.d"
  "/root/repo/src/workloads/sweep_jobs.cc" "src/CMakeFiles/cawa_workloads.dir/workloads/sweep_jobs.cc.o" "gcc" "src/CMakeFiles/cawa_workloads.dir/workloads/sweep_jobs.cc.o.d"
  "/root/repo/src/workloads/tpacf.cc" "src/CMakeFiles/cawa_workloads.dir/workloads/tpacf.cc.o" "gcc" "src/CMakeFiles/cawa_workloads.dir/workloads/tpacf.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/cawa_workloads.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/cawa_workloads.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cawa_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_sm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_cawa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
