# Empty dependencies file for cawa_workloads.
# This may be replaced when dependencies are built.
