file(REMOVE_RECURSE
  "CMakeFiles/cawa_sm.dir/sm/barrier.cc.o"
  "CMakeFiles/cawa_sm.dir/sm/barrier.cc.o.d"
  "CMakeFiles/cawa_sm.dir/sm/dispatcher.cc.o"
  "CMakeFiles/cawa_sm.dir/sm/dispatcher.cc.o.d"
  "CMakeFiles/cawa_sm.dir/sm/scoreboard.cc.o"
  "CMakeFiles/cawa_sm.dir/sm/scoreboard.cc.o.d"
  "CMakeFiles/cawa_sm.dir/sm/simt_stack.cc.o"
  "CMakeFiles/cawa_sm.dir/sm/simt_stack.cc.o.d"
  "CMakeFiles/cawa_sm.dir/sm/sm_core.cc.o"
  "CMakeFiles/cawa_sm.dir/sm/sm_core.cc.o.d"
  "CMakeFiles/cawa_sm.dir/sm/warp.cc.o"
  "CMakeFiles/cawa_sm.dir/sm/warp.cc.o.d"
  "libcawa_sm.a"
  "libcawa_sm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cawa_sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
