# Empty compiler generated dependencies file for cawa_sm.
# This may be replaced when dependencies are built.
