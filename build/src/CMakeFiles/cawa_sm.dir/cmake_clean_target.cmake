file(REMOVE_RECURSE
  "libcawa_sm.a"
)
