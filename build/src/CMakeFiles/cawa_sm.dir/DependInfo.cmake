
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sm/barrier.cc" "src/CMakeFiles/cawa_sm.dir/sm/barrier.cc.o" "gcc" "src/CMakeFiles/cawa_sm.dir/sm/barrier.cc.o.d"
  "/root/repo/src/sm/dispatcher.cc" "src/CMakeFiles/cawa_sm.dir/sm/dispatcher.cc.o" "gcc" "src/CMakeFiles/cawa_sm.dir/sm/dispatcher.cc.o.d"
  "/root/repo/src/sm/scoreboard.cc" "src/CMakeFiles/cawa_sm.dir/sm/scoreboard.cc.o" "gcc" "src/CMakeFiles/cawa_sm.dir/sm/scoreboard.cc.o.d"
  "/root/repo/src/sm/simt_stack.cc" "src/CMakeFiles/cawa_sm.dir/sm/simt_stack.cc.o" "gcc" "src/CMakeFiles/cawa_sm.dir/sm/simt_stack.cc.o.d"
  "/root/repo/src/sm/sm_core.cc" "src/CMakeFiles/cawa_sm.dir/sm/sm_core.cc.o" "gcc" "src/CMakeFiles/cawa_sm.dir/sm/sm_core.cc.o.d"
  "/root/repo/src/sm/warp.cc" "src/CMakeFiles/cawa_sm.dir/sm/warp.cc.o" "gcc" "src/CMakeFiles/cawa_sm.dir/sm/warp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/cawa_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_cawa.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/cawa_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
