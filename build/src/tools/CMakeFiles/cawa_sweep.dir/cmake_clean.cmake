file(REMOVE_RECURSE
  "CMakeFiles/cawa_sweep.dir/cawa_sweep.cc.o"
  "CMakeFiles/cawa_sweep.dir/cawa_sweep.cc.o.d"
  "cawa_sweep"
  "cawa_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cawa_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
