# Empty dependencies file for cawa_sweep.
# This may be replaced when dependencies are built.
